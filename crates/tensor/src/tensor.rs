//! Dense f32 tensors with deterministic operations.
//!
//! Every operation computes each output element by a **fixed, shape-derived
//! accumulation order** (IEEE-754 f32 arithmetic is deterministic when the
//! operation order is fixed — the property the paper's "intra-subnet
//! reproducibility" relies on deterministic CUDA libraries for). The
//! kernels here are additionally *parallel*: work above a shape-derived
//! threshold fans out over the current [`crate::pool`] worker pool, split
//! at fixed chunk boundaries that never depend on the worker count, so
//! results are bitwise identical at 1, 2, 4, or 8 workers.
//!
//! Matrix-multiply contract, shared by [`Tensor::matmul`],
//! [`Tensor::matmul_t`] and [`Tensor::t_matmul`]: every output element is
//! a dot product accumulated in ascending inner-index order from `+0.0`.
//! The register-tiled kernels (4x16 accumulator tiles, AVX when the CPU
//! has it, an identically-ordered scalar tile otherwise) only reorder
//! *across* output elements, never within one, so the tiled, tailed,
//! packed and parallel paths all agree bitwise — with each other and with
//! the naive reference kernel [`Tensor::matmul_naive`]. FMA is never
//! used: its fused rounding would diverge from the scalar mul-then-add.
//!
//! Reductions ([`Tensor::mean`], [`Tensor::sum_sq`], [`Tensor::sum_rows`])
//! keep the historical single-pass order below a fixed size threshold and
//! switch to fixed-size chunk partials combined in ascending chunk order
//! above it. The threshold depends only on the shape, so the association
//! is still a pure function of the shape — never of the worker count.

use crate::pool;
use std::fmt;

/// Rows per register tile (and per accumulator block of the scalar tile).
const MR: usize = 4;
/// Columns per register tile: two 8-lane AVX vectors.
const NR: usize = 16;
/// Output rows per parallel matmul chunk (fixed: chunk boundaries must
/// derive from the shape, not the worker count).
const MM_ROW_BAND: usize = 32;
/// Minimum `m * k * n` before a matmul fans out to the pool.
const PAR_MIN_FLOPS: usize = 1 << 20;
/// Elements per parallel elementwise chunk.
const ELEM_CHUNK: usize = 16 * 1024;
/// Minimum element count before elementwise ops fan out.
const ELEM_PAR_MIN: usize = 32 * 1024;
/// Elements per reduction partial.
const REDUCE_CHUNK: usize = 16 * 1024;
/// Minimum element count before reductions switch to chunked partials.
const REDUCE_PAR_MIN: usize = 64 * 1024;

/// A raw output pointer asserted `Send`/`Sync`: pool chunks write only
/// the disjoint region their chunk index selects.
#[derive(Clone, Copy)]
struct OutPtr(*mut f32);

unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

impl OutPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper, not the raw pointer field.
    fn ptr(&self) -> *mut f32 {
        self.0
    }
}

/// Test/CI hook: `NASPIPE_MATMUL_THROTTLE_US=<µs>` sleeps that long at
/// the start of every matmul, simulating a degraded kernel (e.g. a lost
/// SIMD path) without touching any arithmetic — results stay bitwise
/// identical, only wall time and the compute share of the critical path
/// change. Unset or unparsable means zero cost (read once per process).
fn matmul_throttle_us() -> u64 {
    static THROTTLE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *THROTTLE.get_or_init(|| {
        std::env::var("NASPIPE_MATMUL_THROTTLE_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

#[cfg(target_arch = "x86_64")]
fn avx_available() -> bool {
    static AVX: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
}

#[cfg(not(target_arch = "x86_64"))]
fn avx_available() -> bool {
    false
}

/// Computes one `MR x NR` output tile: `out[r][j] += sum_kk a(r, kk) *
/// b(kk, j)` with `a(r, kk) = a[r * ars + kk * aks]`, `b(kk, j) =
/// b[kk * bs + j]`, accumulated in ascending `kk` and stored over `out`
/// (rows `on` apart). Identical per-element order to [`tile_avx`].
///
/// # Safety
///
/// All strided accesses for `r < MR`, `j < NR`, `kk < k` must be in
/// bounds of the underlying allocations.
#[allow(clippy::too_many_arguments)]
unsafe fn tile_scalar(
    a: *const f32,
    ars: usize,
    aks: usize,
    k: usize,
    b: *const f32,
    bs: usize,
    out: *mut f32,
    on: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let brow = b.add(kk * bs);
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = *a.add(r * ars + kk * aks);
            for (j, slot) in accr.iter_mut().enumerate() {
                *slot += av * *brow.add(j);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let orow = out.add(r * on);
        for (j, &v) in accr.iter().enumerate() {
            *orow.add(j) = v;
        }
    }
}

/// AVX twin of [`tile_scalar`]: same per-element operation order (the
/// lanes are independent elements; `mul` + `add` are elementwise IEEE
/// ops, bitwise equal to the scalar mul-then-add — FMA would not be).
///
/// # Safety
///
/// As [`tile_scalar`], plus the CPU must support AVX.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_avx(
    a: *const f32,
    ars: usize,
    aks: usize,
    k: usize,
    b: *const f32,
    bs: usize,
    out: *mut f32,
    on: usize,
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for kk in 0..k {
        let brow = b.add(kk * bs);
        let b0 = _mm256_loadu_ps(brow);
        let b1 = _mm256_loadu_ps(brow.add(8));
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*a.add(r * ars + kk * aks));
            accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(av, b0));
            accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(av, b1));
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let orow = out.add(r * on);
        _mm256_storeu_ps(orow, accr[0]);
        _mm256_storeu_ps(orow.add(8), accr[1]);
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_avx(
    a: *const f32,
    ars: usize,
    aks: usize,
    k: usize,
    b: *const f32,
    bs: usize,
    out: *mut f32,
    on: usize,
) {
    tile_scalar(a, ars, aks, k, b, bs, out, on);
}

/// Computes `rows` output rows of width `n` into `out` (row-major,
/// tightly packed): `out[r][j] = sum_kk a[a0 + r*ars + kk*aks] *
/// b(kk, j)`, ascending `kk`, from `+0.0`.
///
/// The main `MR x NR` tiles read `b` through
/// `bslice[bpanel(j0) + kk*bs + (j - j0)]` (a column panel that is
/// contiguous in `j`); tail elements read through the scalar accessor
/// `belem(kk, j)`. Both views must expose the same values — only the
/// access pattern differs.
#[allow(clippy::too_many_arguments)]
fn mm_rows(
    a: &[f32],
    a0: usize,
    ars: usize,
    aks: usize,
    k: usize,
    n: usize,
    rows: usize,
    bslice: &[f32],
    bpanel: &(impl Fn(usize) -> usize + Sync),
    bs: usize,
    belem: &(impl Fn(usize, usize) -> f32 + Sync),
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), rows * n);
    let m_main = rows - rows % MR;
    let n_main = n - n % NR;
    let avx = avx_available();
    for i0 in (0..m_main).step_by(MR) {
        for j0 in (0..n_main).step_by(NR) {
            // SAFETY: i0 + MR <= rows, j0 + NR <= n, and the panel
            // contract guarantees kk*bs + NR-1 stays inside bslice.
            unsafe {
                let ap = a.as_ptr().add(a0 + i0 * ars);
                let bp = bslice.as_ptr().add(bpanel(j0));
                let op = out.as_mut_ptr().add(i0 * n + j0);
                if avx {
                    tile_avx(ap, ars, aks, k, bp, bs, op, n);
                } else {
                    tile_scalar(ap, ars, aks, k, bp, bs, op, n);
                }
            }
        }
        for j in n_main..n {
            for r in 0..MR {
                let row = i0 + r;
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[a0 + row * ars + kk * aks] * belem(kk, j);
                }
                out[row * n + j] = acc;
            }
        }
    }
    for row in m_main..rows {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[a0 + row * ars + kk * aks] * belem(kk, j);
            }
            out[row * n + j] = acc;
        }
    }
}

/// Shared matmul driver: runs [`mm_rows`] over the whole output, fanned
/// out in fixed [`MM_ROW_BAND`]-row chunks when `m * k * n` crosses
/// [`PAR_MIN_FLOPS`]. The band grid depends only on the shape, and bands
/// write disjoint row ranges, so the output is bitwise identical for any
/// worker count.
#[allow(clippy::too_many_arguments)]
fn mm_exec(
    a: &[f32],
    ars: usize,
    aks: usize,
    m: usize,
    k: usize,
    n: usize,
    bslice: &[f32],
    bpanel: impl Fn(usize) -> usize + Sync,
    bs: usize,
    belem: impl Fn(usize, usize) -> f32 + Sync,
    out: &mut [f32],
) {
    let throttle = matmul_throttle_us();
    if throttle > 0 {
        std::thread::sleep(std::time::Duration::from_micros(throttle));
    }
    if m * k * n < PAR_MIN_FLOPS || m <= MM_ROW_BAND {
        mm_rows(a, 0, ars, aks, k, n, m, bslice, &bpanel, bs, &belem, out);
        return;
    }
    let bands = m.div_ceil(MM_ROW_BAND);
    let optr = OutPtr(out.as_mut_ptr());
    pool::current().run(bands, &|band| {
        let lo = band * MM_ROW_BAND;
        let hi = (lo + MM_ROW_BAND).min(m);
        // SAFETY: bands cover disjoint row ranges of `out`.
        let out_band =
            unsafe { std::slice::from_raw_parts_mut(optr.ptr().add(lo * n), (hi - lo) * n) };
        mm_rows(
            a,
            lo * ars,
            ars,
            aks,
            k,
            n,
            hi - lo,
            bslice,
            &bpanel,
            bs,
            &belem,
            out_band,
        );
    });
}

/// A dense row-major f32 tensor of rank 1 or 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat `data` vector with the given `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates the `n` x `n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of rows of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a matrix");
        self.shape[0]
    }

    /// Number of columns of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a matrix");
        self.shape[1]
    }

    /// Flat element view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat element view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if out of range or the tensor is not rank 2.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at() requires a matrix");
        assert!(
            row < self.shape[0] && col < self.shape[1],
            "index out of range"
        );
        self.data[row * self.shape[1] + col]
    }

    /// Matrix product `self x rhs` via the register-tiled (AVX when
    /// available) parallel kernel. Every output element accumulates in
    /// ascending-`k` order, so the result is bitwise identical to
    /// [`matmul_naive`](Self::matmul_naive) and invariant to the worker
    /// count. NaN/±inf in either operand propagate per IEEE-754 — there
    /// is no zero-skip shortcut (skipping `a == 0.0` would silently drop
    /// `0.0 * NaN = NaN`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k]` x `[k, n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be a matrix");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        mm_exec(
            &self.data,
            k,
            1,
            m,
            k,
            n,
            &rhs.data,
            |j0| j0,
            n,
            |kk, j| rhs.data[kk * n + j],
            &mut out.data,
        );
        out
    }

    /// The pre-optimisation reference matmul: a single-threaded
    /// accumulate-by-rows triple loop (fixed i-k-j order). Kept as the
    /// baseline the tiled kernel is benchmarked and differentially
    /// tested against; produces bitwise-identical results to
    /// [`matmul`](Self::matmul).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k]` x `[k, n]`.
    pub fn matmul_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be a matrix");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for kk in 0..k {
                let a = self.data[i * k + kk];
                let row = &rhs.data[kk * n..(kk + 1) * n];
                let dst = &mut out.data[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Fused transposed product `self x rhsᵀ` for `self = [m, k]`,
    /// `rhs = [n, k]`: bitwise identical to
    /// `self.matmul(&rhs.transpose())` (each element is the ascending-`k`
    /// dot of two rows) without materialising the `[k, n]` transpose —
    /// `rhs` is packed into `NR`-column panels instead, which the tiled
    /// kernel then reads like ordinary column panels.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k]` x `[n, k]`.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_t lhs must be a matrix");
        assert_eq!(rhs.shape.len(), 2, "matmul_t rhs must be a matrix");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_t inner dimensions differ: {k} vs {k2}");
        let n_main = n - n % NR;
        // Pack rhsᵀ's full NR-wide column panels: panel p holds element
        // (kk, j) at [p*k*NR + kk*NR + (j - p*NR)]. Tail columns are
        // read directly from rhs's (contiguous) rows by the accessor.
        let mut packed = vec![0.0f32; n_main * k];
        for p in 0..n_main / NR {
            for kk in 0..k {
                for c in 0..NR {
                    packed[p * k * NR + kk * NR + c] = rhs.data[(p * NR + c) * k + kk];
                }
            }
        }
        let mut out = Tensor::zeros(&[m, n]);
        mm_exec(
            &self.data,
            k,
            1,
            m,
            k,
            n,
            &packed,
            |j0| (j0 / NR) * k * NR,
            NR,
            |kk, j| rhs.data[j * k + kk],
            &mut out.data,
        );
        out
    }

    /// Fused transposed product `selfᵀ x rhs` for `self = [r, m]`,
    /// `rhs = [r, n]`: bitwise identical to
    /// `self.transpose().matmul(rhs)` (each element accumulates over the
    /// shared leading dimension in ascending order) without
    /// materialising the `[m, r]` transpose — the kernel reads `self`
    /// column-wise through its stride instead.
    ///
    /// # Panics
    ///
    /// Panics if the leading dimensions differ or either is not rank 2.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "t_matmul lhs must be a matrix");
        assert_eq!(rhs.shape.len(), 2, "t_matmul rhs must be a matrix");
        let (r, m) = (self.shape[0], self.shape[1]);
        let (r2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(r, r2, "t_matmul leading dimensions differ: {r} vs {r2}");
        let mut out = Tensor::zeros(&[m, n]);
        mm_exec(
            &self.data,
            1,
            m,
            m,
            r,
            n,
            &rhs.data,
            |j0| j0,
            n,
            |kk, j| rhs.data[kk * n + j],
            &mut out.data,
        );
        out
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Applies `f` elementwise over `self` and `rhs` (already
    /// shape-checked by the caller), fanning out in fixed
    /// [`ELEM_CHUNK`]-element chunks above [`ELEM_PAR_MIN`] elements.
    fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        let total = self.data.len();
        let mut out = vec![0.0f32; total];
        if total < ELEM_PAR_MIN {
            for ((d, &a), &b) in out.iter_mut().zip(&self.data).zip(&rhs.data) {
                *d = f(a, b);
            }
        } else {
            let optr = OutPtr(out.as_mut_ptr());
            let (a, b) = (&self.data, &rhs.data);
            pool::current().run(total.div_ceil(ELEM_CHUNK), &|c| {
                let lo = c * ELEM_CHUNK;
                let hi = (lo + ELEM_CHUNK).min(total);
                // SAFETY: chunks cover disjoint element ranges.
                let dst = unsafe { std::slice::from_raw_parts_mut(optr.ptr().add(lo), hi - lo) };
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = f(a[lo + i], b[lo + i]);
                }
            });
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Applies `f` elementwise; same chunking as [`Self::zip_with`].
    fn map_with(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let total = self.data.len();
        let mut out = vec![0.0f32; total];
        if total < ELEM_PAR_MIN {
            for (d, &a) in out.iter_mut().zip(&self.data) {
                *d = f(a);
            }
        } else {
            let optr = OutPtr(out.as_mut_ptr());
            let a = &self.data;
            pool::current().run(total.div_ceil(ELEM_CHUNK), &|c| {
                let lo = c * ELEM_CHUNK;
                let hi = (lo + ELEM_CHUNK).min(total);
                // SAFETY: chunks cover disjoint element ranges.
                let dst = unsafe { std::slice::from_raw_parts_mut(optr.ptr().add(lo), hi - lo) };
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = f(a[lo + i]);
                }
            });
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "hadamard shape mismatch");
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map_with(|a| a * s)
    }

    /// Adds a row vector `bias` (shape `[1, n]` or `[n]`) to every row.
    ///
    /// # Panics
    ///
    /// Panics if widths do not match.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        let n = *self.shape.last().expect("non-scalar");
        assert_eq!(bias.numel(), n, "bias width mismatch");
        let mut out = self.clone();
        let total = out.data.len();
        if total < ELEM_PAR_MIN {
            for row in out.data.chunks_mut(n) {
                for (d, &b) in row.iter_mut().zip(&bias.data) {
                    *d += b;
                }
            }
        } else {
            let rows = total / n;
            let band = (ELEM_CHUNK / n).max(1);
            let optr = OutPtr(out.data.as_mut_ptr());
            let bias = &bias.data;
            pool::current().run(rows.div_ceil(band), &|c| {
                let lo = c * band;
                let hi = (lo + band).min(rows);
                // SAFETY: bands cover disjoint row ranges.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(optr.ptr().add(lo * n), (hi - lo) * n)
                };
                for row in dst.chunks_mut(n) {
                    for (d, &b) in row.iter_mut().zip(bias) {
                        *d += b;
                    }
                }
            });
        }
        out
    }

    /// Sums over rows, producing a `[1, n]` tensor. Below the chunking
    /// threshold this is the historical fixed top-to-bottom accumulation;
    /// above it, fixed row bands are reduced independently and their
    /// partial rows combined in ascending band order — either way the
    /// association is a pure function of the shape.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "sum_rows requires a matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[1, n]);
        if m * n < REDUCE_PAR_MIN || n == 0 {
            for i in 0..m {
                for j in 0..n {
                    out.data[j] += self.data[i * n + j];
                }
            }
            return out;
        }
        let band = (REDUCE_CHUNK / n).max(1);
        let bands = m.div_ceil(band);
        let mut partials = vec![0.0f32; bands * n];
        let pptr = OutPtr(partials.as_mut_ptr());
        let data = &self.data;
        pool::current().run(bands, &|c| {
            let lo = c * band;
            let hi = (lo + band).min(m);
            // SAFETY: each chunk owns partial row `c`.
            let partial = unsafe { std::slice::from_raw_parts_mut(pptr.ptr().add(c * n), n) };
            for i in lo..hi {
                for (j, p) in partial.iter_mut().enumerate() {
                    *p += data[i * n + j];
                }
            }
        });
        for c in 0..bands {
            for j in 0..n {
                out.data[j] += partials[c * n + j];
            }
        }
        out
    }

    /// Element-wise `tanh`.
    pub fn tanh(&self) -> Tensor {
        self.map_with(f32::tanh)
    }

    /// Derivative of `tanh` given the *activation output* `y`: `1 - y^2`.
    pub fn tanh_backward(y: &Tensor, grad: &Tensor) -> Tensor {
        assert_eq!(y.shape, grad.shape, "tanh_backward shape mismatch");
        y.zip_with(grad, |y, g| (1.0 - y * y) * g)
    }

    /// Sums `term(x)` over all elements: the historical fixed
    /// left-to-right accumulation below the chunking threshold, fixed
    /// [`REDUCE_CHUNK`]-element partials combined in ascending chunk
    /// order above it (shape-derived either way).
    fn reduce_sum(&self, term: impl Fn(f32) -> f32 + Sync) -> f32 {
        let total = self.data.len();
        if total < REDUCE_PAR_MIN {
            let mut acc = 0.0f32;
            for &x in &self.data {
                acc += term(x);
            }
            return acc;
        }
        let chunks = total.div_ceil(REDUCE_CHUNK);
        let mut partials = vec![0.0f32; chunks];
        let pptr = OutPtr(partials.as_mut_ptr());
        let data = &self.data;
        pool::current().run(chunks, &|c| {
            let lo = c * REDUCE_CHUNK;
            let hi = (lo + REDUCE_CHUNK).min(total);
            let mut acc = 0.0f32;
            for &x in &data[lo..hi] {
                acc += term(x);
            }
            // SAFETY: each chunk owns partial slot `c`.
            unsafe { *pptr.ptr().add(c) = acc };
        });
        let mut acc = 0.0f32;
        for &p in &partials {
            acc += p;
        }
        acc
    }

    /// Mean of all elements (fixed, shape-derived accumulation order).
    pub fn mean(&self) -> f32 {
        self.reduce_sum(|x| x) / self.data.len() as f32
    }

    /// Sum of squared elements (fixed, shape-derived accumulation order).
    pub fn sum_sq(&self) -> f32 {
        self.reduce_sum(|x| x * x)
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.sum_sq().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_is_bitwise_repeatable() {
        let a = Tensor::from_vec((0..64).map(|i| (i as f32).sin()).collect(), &[8, 8]);
        let b = Tensor::from_vec((0..64).map(|i| (i as f32).cos()).collect(), &[8, 8]);
        let c1 = a.matmul(&b);
        let c2 = a.matmul(&b);
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    fn wavy(rows: usize, cols: usize, phase: f32) -> Tensor {
        Tensor::from_vec(
            (0..rows * cols)
                .map(|i| (i as f32 * 0.37 + phase).sin())
                .collect(),
            &[rows, cols],
        )
    }

    fn assert_bitwise_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn tiled_matmul_matches_naive_on_ragged_shapes() {
        // Tail paths (m % MR, n % NR, 1xN, Nx1) must keep the same
        // per-element ascending-k order as the reference kernel.
        for &(m, k, n) in &[
            (7usize, 5usize, 3usize),
            (123, 77, 50),
            (1, 64, 300),
            (300, 64, 1),
            (33, 16, 17),
            (4, 1, 16),
        ] {
            let a = wavy(m, k, 0.1);
            let b = wavy(k, n, 0.7);
            assert_bitwise_eq(&a.matmul(&b), &a.matmul_naive(&b), &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn matmul_propagates_nan_from_zero_lhs_rows() {
        // Regression: the old kernel skipped `a == 0.0`, silently
        // dropping `0.0 * NaN = NaN` and `0.0 * inf = NaN`.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 1.0, 2.0], &[2, 2]);
        let c = a.matmul(&b);
        assert!(c.at(0, 0).is_nan(), "0*NaN must surface as NaN");
        assert!(c.at(0, 1).is_nan(), "0*inf must surface as NaN");
        assert_bitwise_eq(&c, &a.matmul_naive(&b), "NaN propagation");
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        for &(m, k, n) in &[(8usize, 16usize, 16usize), (23, 19, 37), (5, 3, 2)] {
            let a = wavy(m, k, 0.2);
            let b = wavy(n, k, 0.9);
            assert_bitwise_eq(
                &a.matmul_t(&b),
                &a.matmul(&b.transpose()),
                &format!("matmul_t {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        for &(r, m, n) in &[(8usize, 16usize, 16usize), (19, 23, 37), (3, 5, 2)] {
            let a = wavy(r, m, 0.4);
            let b = wavy(r, n, 1.3);
            assert_bitwise_eq(
                &a.t_matmul(&b),
                &a.transpose().matmul(&b),
                &format!("t_matmul {r}:{m}x{n}"),
            );
        }
    }

    #[test]
    fn parallel_matmul_is_worker_count_invariant() {
        // Big enough to cross PAR_MIN_FLOPS and actually fan out.
        let a = wavy(160, 96, 0.3);
        let b = wavy(96, 110, 1.1);
        let reference = pool::with_threads(1, || a.matmul(&b));
        for threads in [2, 4, 8] {
            let c = pool::with_threads(threads, || a.matmul(&b));
            assert_bitwise_eq(&c, &reference, &format!("{threads} workers"));
        }
        assert_bitwise_eq(&reference, &a.matmul_naive(&b), "vs naive");
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[3, 2]);
        assert_eq!(a.transpose().at(0, 1), 4.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[1, 2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn add_row_broadcasts() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[1, 2]);
        assert_eq!(x.add_row(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn sum_rows_reduces() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(x.sum_rows().shape(), &[1, 2]);
    }

    #[test]
    fn tanh_and_backward() {
        let x = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let y = x.tanh();
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 0.7615942).abs() < 1e-6);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let dx = Tensor::tanh_backward(&y, &g);
        assert_eq!(dx.data()[0], 1.0); // 1 - tanh(0)^2
    }

    #[test]
    fn reductions() {
        let x = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        assert_eq!(x.mean(), 3.5);
        assert_eq!(x.sum_sq(), 25.0);
        assert_eq!(x.norm(), 5.0);
    }

    #[test]
    fn parallel_elementwise_and_reductions_are_worker_count_invariant() {
        // Above ELEM_PAR_MIN / REDUCE_PAR_MIN, so the chunked paths run.
        let x = wavy(260, 300, 0.0);
        let y = wavy(260, 300, 2.0);
        let reference = pool::with_threads(1, || {
            (
                x.add(&y),
                x.hadamard(&y),
                x.tanh(),
                x.sum_rows(),
                x.mean(),
                x.sum_sq(),
            )
        });
        for threads in [2, 8] {
            let got = pool::with_threads(threads, || {
                (
                    x.add(&y),
                    x.hadamard(&y),
                    x.tanh(),
                    x.sum_rows(),
                    x.mean(),
                    x.sum_sq(),
                )
            });
            assert_bitwise_eq(&got.0, &reference.0, "add");
            assert_bitwise_eq(&got.1, &reference.1, "hadamard");
            assert_bitwise_eq(&got.2, &reference.2, "tanh");
            assert_bitwise_eq(&got.3, &reference.3, "sum_rows");
            assert_eq!(got.4.to_bits(), reference.4.to_bits(), "mean");
            assert_eq!(got.5.to_bits(), reference.5.to_bits(), "sum_sq");
        }
    }

    #[test]
    fn accessors() {
        let x = Tensor::zeros(&[3, 4]);
        assert_eq!(x.rows(), 3);
        assert_eq!(x.cols(), 4);
        assert_eq!(x.numel(), 12);
        assert_eq!(x.to_string(), "Tensor[3, 4]");
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn bad_matmul_panics() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }
}
