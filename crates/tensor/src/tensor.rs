//! Dense f32 tensors with deterministic operations.
//!
//! Every operation computes each output element by a **fixed, shape-derived
//! accumulation order** (IEEE-754 f32 arithmetic is deterministic when the
//! operation order is fixed — the property the paper's "intra-subnet
//! reproducibility" relies on deterministic CUDA libraries for). The
//! kernels here are additionally *parallel*: work above a shape-derived
//! threshold fans out over the current [`crate::pool`] worker pool, split
//! at fixed chunk boundaries that never depend on the worker count, so
//! results are bitwise identical at 1, 2, 4, or 8 workers.
//!
//! # Matrix-multiply contract (v2: fixed-split compensated FMA)
//!
//! Shared by [`Tensor::matmul`], [`Tensor::matmul_t`], [`Tensor::t_matmul`]
//! and [`Tensor::matmul_batch`]. Every output element is the dot product
//! of a length-`k` row/column pair, computed as:
//!
//! 1. **Fixed split**: the inner index range `0..k` is cut into segments
//!    of [`K_SEG`] (= 256) elements at boundaries `256, 512, ..` — a pure
//!    function of `k`, never of the vector width or worker count.
//! 2. **Fused accumulation within a segment**: each segment partial is an
//!    ascending-`kk` chain of IEEE-754 `fusedMultiplyAdd` from `+0.0`
//!    (`acc = a.mul_add(b, acc)`). `fusedMultiplyAdd` is *correctly
//!    rounded* and fully specified, so the hardware `vfmadd` issued by the
//!    AVX2+FMA tile, the scalar `vfmadd` the tail dots compile to, and the
//!    soft-float `fmaf` of the portable twin all produce the same bits.
//!    This is what makes FMA admissible where the v1 contract had to ban
//!    it: mul-then-add rounds twice and disagrees with fused rounding, but
//!    *every* path here fuses.
//! 3. **Compensated combine across segments**: segment partials are folded
//!    in ascending segment order through a branchless TwoSum error
//!    accumulation — `t = sum + p; z = t - sum;
//!    e = (sum - (t - z)) + (p - z); comp += e; sum = t` — and the element
//!    is `sum + comp`. Only adds and subtracts, so the scalar and vector
//!    forms are identical lane-for-lane. For `k <= 256` this degenerates
//!    to the single segment partial unchanged (the combine of one finite
//!    partial is exact and the fused chain never produces `-0.0` from a
//!    `+0.0` seed).
//!
//! The register-tiled kernels (4x16 accumulator tiles, AVX2+FMA when the
//! CPU has both, an identically-ordered portable scalar twin otherwise —
//! see [`set_force_portable`]) treat lanes as independent output elements
//! and only reorder *across* elements, never within one. Operand packing
//! ([`pack_b`] column panels, [`pack_a`] row tiles) is pure data movement.
//! So the tiled, tailed, packed, batched and parallel paths all agree
//! bitwise — with each other and with the reference kernel
//! [`Tensor::matmul_naive`], at any pool size.
//!
//! Non-finite values propagate per IEEE-754 (there is no zero-skip:
//! `0.0 * NaN` surfaces as NaN). One contract-defined wrinkle: a dot
//! whose *segment partial* overflows to `±inf` can surface as NaN, because
//! `inf - inf` appears inside the TwoSum combine. That outcome is itself
//! deterministic and identical on every path.
//!
//! # Reductions
//!
//! Reductions ([`Tensor::mean`], [`Tensor::sum_sq`], [`Tensor::sum_rows`])
//! keep the historical single-pass order below a fixed size threshold and
//! switch to fixed-size chunk partials combined in ascending chunk order
//! above it. The threshold depends only on the shape, so the association
//! is still a pure function of the shape — never of the worker count.

use crate::pool;
use std::fmt;

/// Rows per register tile (and per accumulator block of the scalar tile).
const MR: usize = 4;
/// Columns per register tile: two 8-lane AVX vectors.
const NR: usize = 16;
/// Inner-loop segment length of the fixed-split accumulation (see the
/// module docs). 256 is a multiple of every SIMD width we would ever
/// vectorise over, long enough that the 6-op TwoSum combine is amortised
/// to noise, and short enough to bound worst-case cancellation within a
/// segment for the `k` values real layers use.
pub const K_SEG: usize = 256;
/// Output rows per parallel matmul chunk (fixed: chunk boundaries must
/// derive from the shape, not the worker count).
const MM_ROW_BAND: usize = 32;
/// Minimum per-item `m * k * n` before one matmul splits into row bands.
const PAR_MIN_FLOPS: usize = 1 << 20;
/// Minimum *combined* `m * k * n` before a [`Tensor::matmul_batch`] call
/// fans out to the pool at all; below it the whole batch runs inline.
const BATCH_PAR_MIN: usize = 1 << 18;
/// Minimum `m * k * n` (with `m >= MR`) before a matmul packs operands
/// and runs the register-tiled kernel; below it the per-element strided
/// dot path wins.
const TILE_MIN_FLOPS: usize = 1 << 12;
/// Minimum packed-buffer element count before packing itself fans out.
const PACK_PAR_MIN: usize = 1 << 15;
/// Elements per parallel elementwise chunk.
const ELEM_CHUNK: usize = 16 * 1024;
/// Minimum element count before elementwise ops fan out.
const ELEM_PAR_MIN: usize = 32 * 1024;
/// Elements per reduction partial.
const REDUCE_CHUNK: usize = 16 * 1024;
/// Minimum element count before reductions switch to chunked partials.
const REDUCE_PAR_MIN: usize = 64 * 1024;

/// A raw output pointer asserted `Send`/`Sync`: pool chunks write only
/// the disjoint region their chunk index selects.
#[derive(Clone, Copy)]
struct OutPtr(*mut f32);

unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

impl OutPtr {
    /// Accessor (rather than direct field use) so closures capture the
    /// `Sync` wrapper, not the raw pointer field.
    fn ptr(&self) -> *mut f32 {
        self.0
    }
}

/// Test/CI hook: `NASPIPE_MATMUL_THROTTLE_US=<µs>` sleeps that long at
/// the start of every matmul (once per item of a batched call),
/// simulating a degraded kernel (e.g. a lost SIMD path) without touching
/// any arithmetic — results stay bitwise identical, only wall time and
/// the compute share of the critical path change. Unset or unparsable
/// means zero cost (read once per process).
fn matmul_throttle_us() -> u64 {
    static THROTTLE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *THROTTLE.get_or_init(|| {
        std::env::var("NASPIPE_MATMUL_THROTTLE_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

static FORCE_PORTABLE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Test hook: routes every matmul through the portable scalar twin
/// (software-fused `mul_add`) instead of the AVX2+FMA tile. The two paths
/// are bitwise identical by contract — this switch exists so tests can
/// *prove* that on FMA hardware — so toggling it concurrently with other
/// work is harmless.
pub fn set_force_portable(on: bool) {
    FORCE_PORTABLE.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// Whether [`set_force_portable`] is currently engaged.
pub fn force_portable() -> bool {
    FORCE_PORTABLE.load(std::sync::atomic::Ordering::Relaxed)
}

/// True when the vectorised AVX2+FMA kernels may run: the CPU has both
/// features and the portable override is off.
#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    static OK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *OK.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx") && std::arch::is_x86_feature_detected!("fma")
    }) && !force_portable()
}

#[cfg(not(target_arch = "x86_64"))]
fn fma_available() -> bool {
    false
}

/// True when the AVX-512F kernels may run (wider vectors change nothing
/// about per-element order — lanes are independent output elements — so
/// this is purely a throughput gate).
#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    static OK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *OK.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f")) && !force_portable()
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_available() -> bool {
    false
}

/// The strided contract dot product (module docs steps 1–3): segments of
/// [`K_SEG`] fused multiply-adds from `+0.0`, partials TwoSum-combined in
/// ascending order. `a(kk) = a[kk * aks]`, `b(kk) = b[kk * bks]`.
///
/// Inlined into both the portable wrapper (where `mul_add` lowers to the
/// correctly-rounded `fmaf`) and the `#[target_feature(fma)]` wrapper
/// (where it lowers to scalar `vfmadd`); both produce identical bits.
///
/// # Safety
///
/// `a + kk * aks` and `b + kk * bks` must be in bounds for all `kk < k`.
#[inline(always)]
unsafe fn dot_stride_body(a: *const f32, aks: usize, b: *const f32, bks: usize, k: usize) -> f32 {
    let mut sum = 0.0f32;
    let mut comp = 0.0f32;
    let mut s0 = 0usize;
    while s0 < k {
        let s1 = (s0 + K_SEG).min(k);
        let mut acc = 0.0f32;
        for kk in s0..s1 {
            acc = (*a.add(kk * aks)).mul_add(*b.add(kk * bks), acc);
        }
        let t = sum + acc;
        let z = t - sum;
        comp += (sum - (t - z)) + (acc - z);
        sum = t;
        s0 = s1;
    }
    sum + comp
}

/// [`dot_stride_body`] compiled with scalar hardware FMA.
///
/// # Safety
///
/// As [`dot_stride_body`], plus the CPU must support FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx", enable = "fma")]
unsafe fn dot_stride_fma(a: *const f32, aks: usize, b: *const f32, bks: usize, k: usize) -> f32 {
    dot_stride_body(a, aks, b, bks, k)
}

/// Dispatching contract dot: hardware-FMA build when available, portable
/// (libm `fmaf`) body otherwise — bitwise identical either way.
///
/// # Safety
///
/// As [`dot_stride_body`].
unsafe fn dot_stride(a: *const f32, aks: usize, b: *const f32, bks: usize, k: usize) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        return dot_stride_fma(a, aks, b, bks, k);
    }
    dot_stride_body(a, aks, b, bks, k)
}

/// Portable scalar twin of [`tile_fma`]: one `MR x NR` output tile,
/// `out[r][j] = contract-dot(a(r, ..), b(.., j))` with
/// `a(r, kk) = a[r * ars + kk * aks]`, `b(kk, j) = b[kk * bs + j]`, stored
/// over `out` (rows `on` apart). Per-element operation order identical to
/// the vector tile: segment fused chains, ascending TwoSum combine.
///
/// # Safety
///
/// All strided accesses for `r < MR`, `j < NR`, `kk < k` must be in
/// bounds of the underlying allocations.
#[allow(clippy::too_many_arguments)]
unsafe fn tile_portable(
    a: *const f32,
    ars: usize,
    aks: usize,
    k: usize,
    b: *const f32,
    bs: usize,
    out: *mut f32,
    on: usize,
) {
    let mut sum = [[0.0f32; NR]; MR];
    let mut comp = [[0.0f32; NR]; MR];
    let mut s0 = 0usize;
    while s0 < k {
        let s1 = (s0 + K_SEG).min(k);
        let mut acc = [[0.0f32; NR]; MR];
        for kk in s0..s1 {
            let brow = b.add(kk * bs);
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = *a.add(r * ars + kk * aks);
                for (j, slot) in accr.iter_mut().enumerate() {
                    *slot = av.mul_add(*brow.add(j), *slot);
                }
            }
        }
        for r in 0..MR {
            for j in 0..NR {
                let p = acc[r][j];
                let s = sum[r][j];
                let t = s + p;
                let z = t - s;
                comp[r][j] += (s - (t - z)) + (p - z);
                sum[r][j] = t;
            }
        }
        s0 = s1;
    }
    for r in 0..MR {
        let orow = out.add(r * on);
        for j in 0..NR {
            *orow.add(j) = sum[r][j] + comp[r][j];
        }
    }
}

/// AVX2+FMA tile: same per-element operation order as [`tile_portable`]
/// (the lanes are independent elements; `vfmaddps` is the lanewise
/// correctly-rounded `fusedMultiplyAdd`, and the TwoSum combine is pure
/// add/sub, also lanewise). The hot segment loop keeps only the `MR x 2`
/// segment accumulators plus the two `b` vectors live; the running
/// sum/compensation pairs are touched once per [`K_SEG`] iterations.
///
/// # Safety
///
/// As [`tile_portable`], plus the CPU must support AVX and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_fma(
    a: *const f32,
    ars: usize,
    aks: usize,
    k: usize,
    b: *const f32,
    bs: usize,
    out: *mut f32,
    on: usize,
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps, _mm256_sub_ps,
    };
    let mut sum = [[_mm256_setzero_ps(); 2]; MR];
    let mut comp = [[_mm256_setzero_ps(); 2]; MR];
    let mut s0 = 0usize;
    while s0 < k {
        let s1 = (s0 + K_SEG).min(k);
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for kk in s0..s1 {
            let brow = b.add(kk * bs);
            let b0 = _mm256_loadu_ps(brow);
            let b1 = _mm256_loadu_ps(brow.add(8));
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*a.add(r * ars + kk * aks));
                accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
            }
        }
        for r in 0..MR {
            for h in 0..2 {
                let p = acc[r][h];
                let s = sum[r][h];
                let t = _mm256_add_ps(s, p);
                let z = _mm256_sub_ps(t, s);
                let e = _mm256_add_ps(_mm256_sub_ps(s, _mm256_sub_ps(t, z)), _mm256_sub_ps(p, z));
                comp[r][h] = _mm256_add_ps(comp[r][h], e);
                sum[r][h] = t;
            }
        }
        s0 = s1;
    }
    for r in 0..MR {
        let orow = out.add(r * on);
        _mm256_storeu_ps(orow, _mm256_add_ps(sum[r][0], comp[r][0]));
        _mm256_storeu_ps(orow.add(8), _mm256_add_ps(sum[r][1], comp[r][1]));
    }
}

/// AVX-512 twin covering **two** vertically adjacent `MR x NR` tiles
/// (8 rows x one 16-lane zmm): rows `0..MR` read from `a0`, rows
/// `MR..2*MR` from `a1`, both through the same strides. Identical
/// per-element operation order to [`tile_fma`]/[`tile_portable`] —
/// `vfmadd` and the TwoSum add/subs are lanewise correctly-rounded IEEE
/// ops at any width; the wider tile only changes how many independent
/// elements fly at once (8 accumulator chains cover the FMA latency of
/// two 512-bit ports).
///
/// # Safety
///
/// As [`tile_portable`] for both row groups, plus the CPU must support
/// AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_fma512(
    a0: *const f32,
    a1: *const f32,
    ars: usize,
    aks: usize,
    k: usize,
    b: *const f32,
    bs: usize,
    out: *mut f32,
    on: usize,
) {
    use std::arch::x86_64::{
        _mm512_add_ps, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_set1_ps, _mm512_setzero_ps,
        _mm512_storeu_ps, _mm512_sub_ps,
    };
    let mut sum = [_mm512_setzero_ps(); 2 * MR];
    let mut comp = [_mm512_setzero_ps(); 2 * MR];
    let mut s0 = 0usize;
    while s0 < k {
        let s1 = (s0 + K_SEG).min(k);
        let mut acc = [_mm512_setzero_ps(); 2 * MR];
        for kk in s0..s1 {
            let bv = _mm512_loadu_ps(b.add(kk * bs));
            for (r, accr) in acc.iter_mut().enumerate().take(MR) {
                let av = _mm512_set1_ps(*a0.add(r * ars + kk * aks));
                *accr = _mm512_fmadd_ps(av, bv, *accr);
            }
            for r in 0..MR {
                let av = _mm512_set1_ps(*a1.add(r * ars + kk * aks));
                acc[MR + r] = _mm512_fmadd_ps(av, bv, acc[MR + r]);
            }
        }
        for r in 0..2 * MR {
            let p = acc[r];
            let s = sum[r];
            let t = _mm512_add_ps(s, p);
            let z = _mm512_sub_ps(t, s);
            let e = _mm512_add_ps(_mm512_sub_ps(s, _mm512_sub_ps(t, z)), _mm512_sub_ps(p, z));
            comp[r] = _mm512_add_ps(comp[r], e);
            sum[r] = t;
        }
        s0 = s1;
    }
    for r in 0..2 * MR {
        _mm512_storeu_ps(out.add(r * on), _mm512_add_ps(sum[r], comp[r]));
    }
}

/// Non-x86 stand-in (never dispatched: [`avx512_available`] is false).
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
unsafe fn tile_fma512(
    a0: *const f32,
    a1: *const f32,
    ars: usize,
    aks: usize,
    k: usize,
    b: *const f32,
    bs: usize,
    out: *mut f32,
    on: usize,
) {
    tile_portable(a0, ars, aks, k, b, bs, out, on);
    tile_portable(a1, ars, aks, k, b, bs, out.add(MR * on), on);
}

/// Packs the logical `[k, n]` operand `b(kk, j) = b[b0 + j * bjs +
/// kk * bks]` into `ceil(n / NR)` column panels: panel `p` holds element
/// `(kk, j)` at `[p * k * NR + kk * NR + (j - p * NR)]`. The last panel
/// is zero-padded past column `n` (padded lanes are computed by the tile
/// and discarded). Packing is pure data movement, fanned out per panel
/// over the pool above [`PACK_PAR_MIN`] elements (panels are disjoint
/// destination regions and the grid depends only on the shape).
fn pack_b(b: &[f32], b0: usize, bjs: usize, bks: usize, k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    let pack_panel = |p: usize, dst: &mut [f32]| {
        let jbase = p * NR;
        let w = NR.min(n - jbase);
        if bjs == 1 {
            // Row-major source: copy `w` consecutive columns per kk.
            for kk in 0..k {
                let src = b0 + jbase + kk * bks;
                for (c, slot) in dst[kk * NR..kk * NR + w].iter_mut().enumerate() {
                    *slot = b[src + c];
                }
            }
        } else {
            // Column-strided source (e.g. matmul_t): walk each logical
            // column contiguously instead.
            for c in 0..w {
                let src = b0 + (jbase + c) * bjs;
                for kk in 0..k {
                    dst[kk * NR + c] = b[src + kk * bks];
                }
            }
        }
    };
    if packed.len() >= PACK_PAR_MIN && panels > 1 {
        let pptr = OutPtr(packed.as_mut_ptr());
        pool::current().run(panels, &|p| {
            // SAFETY: panel p owns packed[p*k*NR .. (p+1)*k*NR].
            let dst = unsafe { std::slice::from_raw_parts_mut(pptr.ptr().add(p * k * NR), k * NR) };
            pack_panel(p, dst);
        });
    } else {
        for p in 0..panels {
            pack_panel(p, &mut packed[p * k * NR..(p + 1) * k * NR]);
        }
    }
    packed
}

/// Rows-per-chunk when A-packing fans out (8 tiles = one matmul row band).
const PACK_A_TILE_CHUNK: usize = MM_ROW_BAND / MR;

/// Packs the full `MR`-row tiles of the logical `[m, k]` operand
/// `a(i, kk) = a[i * ars + kk * aks]`: tile `t` holds element `(r, kk)`
/// at `[t * k * MR + kk * MR + r]`, i.e. stride-1 rows / stride-`MR`
/// inner index, which is what the register tile streams. Only the
/// `m - m % MR` full tiles are packed; tail rows read the raw operand.
fn pack_a(a: &[f32], ars: usize, aks: usize, m: usize, k: usize) -> Vec<f32> {
    let tiles = m / MR;
    let mut packed = vec![0.0f32; tiles * k * MR];
    let pack_tile = |t: usize, dst: &mut [f32]| {
        let ibase = t * MR;
        if aks == 1 {
            for r in 0..MR {
                let src = (ibase + r) * ars;
                for kk in 0..k {
                    dst[kk * MR + r] = a[src + kk];
                }
            }
        } else {
            // Inner-stride source (t_matmul reads its lhs column-wise);
            // walk kk outer so the `ars`-strided reads stay local.
            for kk in 0..k {
                let src = ibase * ars + kk * aks;
                for r in 0..MR {
                    dst[kk * MR + r] = a[src + r * ars];
                }
            }
        }
    };
    if packed.len() >= PACK_PAR_MIN && tiles > PACK_A_TILE_CHUNK {
        let pptr = OutPtr(packed.as_mut_ptr());
        pool::current().run(tiles.div_ceil(PACK_A_TILE_CHUNK), &|c| {
            let lo = c * PACK_A_TILE_CHUNK;
            let hi = (lo + PACK_A_TILE_CHUNK).min(tiles);
            // SAFETY: chunks own disjoint tile ranges of `packed`.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(pptr.ptr().add(lo * k * MR), (hi - lo) * k * MR)
            };
            for t in lo..hi {
                pack_tile(t, &mut dst[(t - lo) * k * MR..(t - lo + 1) * k * MR]);
            }
        });
    } else {
        for t in 0..tiles {
            pack_tile(t, &mut packed[t * k * MR..(t + 1) * k * MR]);
        }
    }
    packed
}

/// One matmul of a [`Tensor::matmul_batch`] call: which operand (if any)
/// is transposed. The contract result is identical to materialising the
/// transpose and calling the plain product — these variants exist so the
/// kernels can read through strides / packed panels instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmOp {
    /// `a[m, k] x b[k, n]` — plain product.
    Nn,
    /// `a[m, k] x b[n, k]ᵀ` — [`Tensor::matmul_t`].
    Nt,
    /// `a[r, m]ᵀ x b[r, n]` — [`Tensor::t_matmul`].
    Tn,
}

/// Prepared execution plan for one matmul item: logical shape, raw
/// operand strides (`a(i, kk) = a[i*ars + kk*aks]`,
/// `b(kk, j) = b[j*bjs + kk*bks]`), and — on the tiled path — packed
/// operands. `b_packed == None` marks the tiny path (per-element strided
/// dots, no packing).
struct MmPlan<'a> {
    m: usize,
    k: usize,
    n: usize,
    a: &'a [f32],
    ars: usize,
    aks: usize,
    b: &'a [f32],
    bjs: usize,
    bks: usize,
    a_packed: Option<Vec<f32>>,
    b_packed: Option<Vec<f32>>,
}

impl<'a> MmPlan<'a> {
    fn new(op: MmOp, a: &'a Tensor, b: &'a Tensor) -> Self {
        assert_eq!(a.shape.len(), 2, "matmul lhs must be a matrix");
        assert_eq!(b.shape.len(), 2, "matmul rhs must be a matrix");
        let (m, k, n, ars, aks, bjs, bks) = match op {
            MmOp::Nn => {
                let (m, k) = (a.shape[0], a.shape[1]);
                let (k2, n) = (b.shape[0], b.shape[1]);
                assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
                (m, k, n, k, 1, 1, n)
            }
            MmOp::Nt => {
                let (m, k) = (a.shape[0], a.shape[1]);
                let (n, k2) = (b.shape[0], b.shape[1]);
                assert_eq!(k, k2, "matmul_t inner dimensions differ: {k} vs {k2}");
                (m, k, n, k, 1, k, 1)
            }
            MmOp::Tn => {
                let (r, m) = (a.shape[0], a.shape[1]);
                let (r2, n) = (b.shape[0], b.shape[1]);
                assert_eq!(r, r2, "t_matmul leading dimensions differ: {r} vs {r2}");
                (m, r, n, 1, m, 1, n)
            }
        };
        let mut plan = MmPlan {
            m,
            k,
            n,
            a: &a.data,
            ars,
            aks,
            b: &b.data,
            bjs,
            bks,
            a_packed: None,
            b_packed: None,
        };
        if m >= MR && m * k * n >= TILE_MIN_FLOPS {
            plan.b_packed = Some(pack_b(plan.b, 0, bjs, bks, k, n));
            // A-packing pays when the tile would otherwise stride through
            // A (t_matmul) or stream rows too long for L1 to keep hot.
            if aks != 1 || k >= 256 {
                plan.a_packed = Some(pack_a(plan.a, ars, aks, m, k));
            }
        }
        plan
    }

    fn flops(&self) -> usize {
        self.m * self.k * self.n
    }

    /// Row bands this item splits into (1 unless it is large enough to
    /// fan out on its own). Banding is purely a work split — every row is
    /// computed identically whatever band it lands in.
    fn bands(&self) -> usize {
        if self.flops() >= PAR_MIN_FLOPS && self.m > MM_ROW_BAND {
            self.m.div_ceil(MM_ROW_BAND)
        } else {
            1
        }
    }

    /// Contract dot of output element `(row, j)` through the raw strided
    /// operands.
    fn dot_raw(&self, row: usize, j: usize) -> f32 {
        // SAFETY: row < m and j < n keep both strided walks in bounds.
        unsafe {
            dot_stride(
                self.a.as_ptr().add(row * self.ars),
                self.aks,
                self.b.as_ptr().add(j * self.bjs),
                self.bks,
                self.k,
            )
        }
    }

    /// Computes output rows `lo..hi` into `out` (row-major, width `n`,
    /// `out[0]` is row `lo`).
    fn exec_rows(&self, lo: usize, hi: usize, out: &mut [f32]) {
        let (k, n) = (self.k, self.n);
        debug_assert_eq!(out.len(), (hi - lo) * n);
        let Some(bp) = &self.b_packed else {
            // Tiny path: strided dots, no packing.
            for row in lo..hi {
                for j in 0..n {
                    out[(row - lo) * n + j] = self.dot_raw(row, j);
                }
            }
            return;
        };
        let vec_ok = fma_available();
        let panels = n.div_ceil(NR);
        let n_main = (n / NR) * NR;
        let tail_w = n - n_main;
        // A-tile accessor: packed tiles when available, raw strides
        // otherwise. Either way the values and per-element order are the
        // same — packing is pure data movement.
        let a_tile = |i0: usize| -> (*const f32, usize, usize) {
            match &self.a_packed {
                // SAFETY: i0 < tile_hi means tile i0/MR was packed.
                Some(pa) => (unsafe { pa.as_ptr().add((i0 / MR) * k * MR) }, 1, MR),
                // SAFETY: rows i0..i0+MR are in bounds of the raw lhs.
                None => (
                    unsafe { self.a.as_ptr().add(i0 * self.ars) },
                    self.ars,
                    self.aks,
                ),
            }
        };
        // Bands are MM_ROW_BAND-aligned and MM_ROW_BAND % MR == 0, so
        // every band starts on a tile boundary; only the last band can
        // carry tail rows.
        let tile_hi = hi.min(self.m - self.m % MR);
        // Cache-block the rows at MM_ROW_BAND and walk panels in the
        // outer loop: each ~k*NR panel is then reused across the whole
        // L1-resident row block instead of being re-streamed from L2 for
        // every MR-row tile. (This is a traversal order over independent
        // output tiles — it cannot affect any element's value.)
        let vec512_ok = avx512_available();
        let mut ic = lo;
        while ic < tile_hi {
            let ic_hi = (ic + MM_ROW_BAND).min(tile_hi);
            for p in 0..panels {
                let last = p + 1 == panels && tail_w > 0;
                let mut i0 = ic;
                if vec512_ok && !last {
                    // Wider-vector fast path: two stacked tiles per call.
                    while i0 + 2 * MR <= ic_hi {
                        let (ap0, ars, aks) = a_tile(i0);
                        let (ap1, _, _) = a_tile(i0 + MR);
                        // SAFETY: full panel, 2*MR full rows in bounds.
                        unsafe {
                            let bpp = bp.as_ptr().add(p * k * NR);
                            let op = out.as_mut_ptr().add((i0 - lo) * n + p * NR);
                            tile_fma512(ap0, ap1, ars, aks, k, bpp, NR, op, n);
                        }
                        i0 += 2 * MR;
                    }
                }
                while i0 < ic_hi {
                    let (ap, ars, aks) = a_tile(i0);
                    if last {
                        // Zero-padded tail panel: compute a full NR-wide
                        // tile into scratch, keep the valid columns.
                        let mut tmp = [0.0f32; MR * NR];
                        // SAFETY: the tail panel is allocated NR wide.
                        unsafe {
                            let bpp = bp.as_ptr().add(p * k * NR);
                            if vec_ok {
                                tile_fma(ap, ars, aks, k, bpp, NR, tmp.as_mut_ptr(), NR);
                            } else {
                                tile_portable(ap, ars, aks, k, bpp, NR, tmp.as_mut_ptr(), NR);
                            }
                        }
                        for r in 0..MR {
                            let dst = (i0 - lo + r) * n + n_main;
                            out[dst..dst + tail_w].copy_from_slice(&tmp[r * NR..r * NR + tail_w]);
                        }
                    } else {
                        // SAFETY: full panel, full tile: all in bounds.
                        unsafe {
                            let bpp = bp.as_ptr().add(p * k * NR);
                            let op = out.as_mut_ptr().add((i0 - lo) * n + p * NR);
                            if vec_ok {
                                tile_fma(ap, ars, aks, k, bpp, NR, op, n);
                            } else {
                                tile_portable(ap, ars, aks, k, bpp, NR, op, n);
                            }
                        }
                    }
                    i0 += MR;
                }
            }
            ic = ic_hi;
        }
        // Tail rows (< MR of them, last band only): contract dots against
        // the packed panels (stride NR within a panel), raw strided lhs.
        for row in tile_hi.max(lo)..hi {
            for j in 0..n {
                // SAFETY: panel j/NR covers column j; strided walks stay
                // inside the packed buffer / raw lhs.
                out[(row - lo) * n + j] = unsafe {
                    dot_stride(
                        self.a.as_ptr().add(row * self.ars),
                        self.aks,
                        bp.as_ptr().add((j / NR) * k * NR + j % NR),
                        NR,
                        k,
                    )
                };
            }
        }
    }
}

/// Executes a batch of prepared plans: single flat chunk space of all
/// items' row bands (prefix-sum mapped), one pool fan-out. Returns the
/// outputs in item order.
fn mm_batch_exec(plans: &[MmPlan<'_>]) -> Vec<Tensor> {
    let mut outs: Vec<Tensor> = plans.iter().map(|p| Tensor::zeros(&[p.m, p.n])).collect();
    let bands: Vec<usize> = plans.iter().map(MmPlan::bands).collect();
    let mut starts = vec![0usize; plans.len() + 1];
    for (i, &b) in bands.iter().enumerate() {
        starts[i + 1] = starts[i] + b;
    }
    let total_bands = starts[plans.len()];
    let total_flops: usize = plans.iter().map(MmPlan::flops).sum();
    if total_bands <= 1 || total_flops < BATCH_PAR_MIN {
        for (plan, out) in plans.iter().zip(&mut outs) {
            plan.exec_rows(0, plan.m, &mut out.data);
        }
        return outs;
    }
    let optrs: Vec<OutPtr> = outs
        .iter_mut()
        .map(|t| OutPtr(t.data.as_mut_ptr()))
        .collect();
    // Batch chunk claims when the band grid is fine-grained; the grab
    // size derives from the band count (a shape function), never the
    // worker count — and claiming order is irrelevant to the result.
    let grab = (total_bands / 64).max(1);
    pool::current().run_chunked(total_bands, grab, &|c| {
        let item = starts.partition_point(|&s| s <= c) - 1;
        let plan = &plans[item];
        let (lo, hi) = if bands[item] == 1 {
            (0, plan.m)
        } else {
            let lo = (c - starts[item]) * MM_ROW_BAND;
            (lo, (lo + MM_ROW_BAND).min(plan.m))
        };
        // SAFETY: bands cover disjoint row ranges of item outputs.
        let out = unsafe {
            std::slice::from_raw_parts_mut(optrs[item].ptr().add(lo * plan.n), (hi - lo) * plan.n)
        };
        plan.exec_rows(lo, hi, out);
    });
    outs
}

/// A dense row-major f32 tensor of rank 1 or 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat `data` vector with the given `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates the `n` x `n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of rows of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a matrix");
        self.shape[0]
    }

    /// Number of columns of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a matrix");
        self.shape[1]
    }

    /// Flat element view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat element view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if out of range or the tensor is not rank 2.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at() requires a matrix");
        assert!(
            row < self.shape[0] && col < self.shape[1],
            "index out of range"
        );
        self.data[row * self.shape[1] + col]
    }

    /// Matrix product `self x rhs` via the packed, register-tiled
    /// (AVX2+FMA when available) parallel kernel. Every output element
    /// follows the fixed-split compensated contract in the module docs,
    /// so the result is bitwise identical to
    /// [`matmul_naive`](Self::matmul_naive) and invariant to the worker
    /// count. NaN/±inf in either operand propagate per IEEE-754 — there
    /// is no zero-skip shortcut (skipping `a == 0.0` would silently drop
    /// `0.0 * NaN = NaN`).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k]` x `[k, n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        Self::matmul_batch(&[(MmOp::Nn, self, rhs)])
            .pop()
            .expect("one output")
    }

    /// The reference matmul: a direct, single-threaded, unpacked
    /// transcription of the contract in the module docs — per output
    /// element, [`K_SEG`]-segment fused chains TwoSum-combined in
    /// ascending order. Kept as the baseline the tiled kernel is
    /// benchmarked and differentially tested against; produces
    /// bitwise-identical results to [`matmul`](Self::matmul).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k]` x `[k, n]`.
    pub fn matmul_naive(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be a matrix");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                // SAFETY: i < m, j < n keep both strided walks in bounds.
                out.data[i * n + j] = unsafe {
                    dot_stride_body(
                        self.data.as_ptr().add(i * k),
                        1,
                        rhs.data.as_ptr().add(j),
                        n,
                        k,
                    )
                };
            }
        }
        out
    }

    /// Fused transposed product `self x rhsᵀ` for `self = [m, k]`,
    /// `rhs = [n, k]`: bitwise identical to
    /// `self.matmul(&rhs.transpose())` (each element is the contract dot
    /// of two rows) without materialising the `[k, n]` transpose — `rhs`
    /// is packed into `NR`-column panels instead, which the tiled kernel
    /// then reads like ordinary column panels.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k]` x `[n, k]`.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        Self::matmul_batch(&[(MmOp::Nt, self, rhs)])
            .pop()
            .expect("one output")
    }

    /// Fused transposed product `selfᵀ x rhs` for `self = [r, m]`,
    /// `rhs = [r, n]`: bitwise identical to
    /// `self.transpose().matmul(rhs)` (each element accumulates over the
    /// shared leading dimension by the contract order) without
    /// materialising the `[m, r]` transpose — `self` is packed into
    /// `MR`-row tiles read through their stride instead.
    ///
    /// # Panics
    ///
    /// Panics if the leading dimensions differ or either is not rank 2.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        Self::matmul_batch(&[(MmOp::Tn, self, rhs)])
            .pop()
            .expect("one output")
    }

    /// Executes several matrix products as **one** pool fan-out: the row
    /// bands of all items form a single flat chunk space (prefix-sum
    /// mapped back to `(item, band)`), so a group of small matmuls — the
    /// per-layer sizes the scheduler actually issues, e.g. the two
    /// gradient products of `dense_backward` — fills the pool instead of
    /// paying one synchronisation per product. Results are bitwise
    /// identical to issuing the items individually, in any batch
    /// composition, at any worker count.
    ///
    /// Below a combined-work threshold the whole batch runs inline on
    /// the caller.
    ///
    /// # Panics
    ///
    /// Panics if any item's shapes are incompatible for its [`MmOp`].
    pub fn matmul_batch(items: &[(MmOp, &Tensor, &Tensor)]) -> Vec<Tensor> {
        let throttle = matmul_throttle_us();
        if throttle > 0 && !items.is_empty() {
            // One sleep per item: a batch of two simulates two degraded
            // kernel launches, keeping the doctor-experiment semantics.
            std::thread::sleep(std::time::Duration::from_micros(
                throttle * items.len() as u64,
            ));
        }
        let plans: Vec<MmPlan<'_>> = items
            .iter()
            .map(|&(op, a, b)| MmPlan::new(op, a, b))
            .collect();
        mm_batch_exec(&plans)
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Applies `f` elementwise over `self` and `rhs` (already
    /// shape-checked by the caller), fanning out in fixed
    /// [`ELEM_CHUNK`]-element chunks above [`ELEM_PAR_MIN`] elements.
    fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        let total = self.data.len();
        let mut out = vec![0.0f32; total];
        if total < ELEM_PAR_MIN {
            for ((d, &a), &b) in out.iter_mut().zip(&self.data).zip(&rhs.data) {
                *d = f(a, b);
            }
        } else {
            let optr = OutPtr(out.as_mut_ptr());
            let (a, b) = (&self.data, &rhs.data);
            let chunks = total.div_ceil(ELEM_CHUNK);
            pool::current().run_chunked(chunks, (chunks / 64).max(1), &|c| {
                let lo = c * ELEM_CHUNK;
                let hi = (lo + ELEM_CHUNK).min(total);
                // SAFETY: chunks cover disjoint element ranges.
                let dst = unsafe { std::slice::from_raw_parts_mut(optr.ptr().add(lo), hi - lo) };
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = f(a[lo + i], b[lo + i]);
                }
            });
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Applies `f` elementwise; same chunking as [`Self::zip_with`].
    fn map_with(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let total = self.data.len();
        let mut out = vec![0.0f32; total];
        if total < ELEM_PAR_MIN {
            for (d, &a) in out.iter_mut().zip(&self.data) {
                *d = f(a);
            }
        } else {
            let optr = OutPtr(out.as_mut_ptr());
            let a = &self.data;
            let chunks = total.div_ceil(ELEM_CHUNK);
            pool::current().run_chunked(chunks, (chunks / 64).max(1), &|c| {
                let lo = c * ELEM_CHUNK;
                let hi = (lo + ELEM_CHUNK).min(total);
                // SAFETY: chunks cover disjoint element ranges.
                let dst = unsafe { std::slice::from_raw_parts_mut(optr.ptr().add(lo), hi - lo) };
                for (i, d) in dst.iter_mut().enumerate() {
                    *d = f(a[lo + i]);
                }
            });
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "hadamard shape mismatch");
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map_with(|a| a * s)
    }

    /// Adds a row vector `bias` (shape `[1, n]` or `[n]`) to every row.
    ///
    /// # Panics
    ///
    /// Panics if widths do not match.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        let n = *self.shape.last().expect("non-scalar");
        assert_eq!(bias.numel(), n, "bias width mismatch");
        let mut out = self.clone();
        let total = out.data.len();
        if total < ELEM_PAR_MIN {
            for row in out.data.chunks_mut(n) {
                for (d, &b) in row.iter_mut().zip(&bias.data) {
                    *d += b;
                }
            }
        } else {
            let rows = total / n;
            let band = (ELEM_CHUNK / n).max(1);
            let optr = OutPtr(out.data.as_mut_ptr());
            let bias = &bias.data;
            let chunks = rows.div_ceil(band);
            pool::current().run_chunked(chunks, (chunks / 64).max(1), &|c| {
                let lo = c * band;
                let hi = (lo + band).min(rows);
                // SAFETY: bands cover disjoint row ranges.
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(optr.ptr().add(lo * n), (hi - lo) * n)
                };
                for row in dst.chunks_mut(n) {
                    for (d, &b) in row.iter_mut().zip(bias) {
                        *d += b;
                    }
                }
            });
        }
        out
    }

    /// Sums over rows, producing a `[1, n]` tensor. Below the chunking
    /// threshold this is the historical fixed top-to-bottom accumulation;
    /// above it, fixed row bands are reduced independently and their
    /// partial rows combined in ascending band order — either way the
    /// association is a pure function of the shape.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "sum_rows requires a matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[1, n]);
        if m * n < REDUCE_PAR_MIN || n == 0 {
            for i in 0..m {
                for j in 0..n {
                    out.data[j] += self.data[i * n + j];
                }
            }
            return out;
        }
        let band = (REDUCE_CHUNK / n).max(1);
        let bands = m.div_ceil(band);
        let mut partials = vec![0.0f32; bands * n];
        let pptr = OutPtr(partials.as_mut_ptr());
        let data = &self.data;
        pool::current().run(bands, &|c| {
            let lo = c * band;
            let hi = (lo + band).min(m);
            // SAFETY: each chunk owns partial row `c`.
            let partial = unsafe { std::slice::from_raw_parts_mut(pptr.ptr().add(c * n), n) };
            for i in lo..hi {
                for (j, p) in partial.iter_mut().enumerate() {
                    *p += data[i * n + j];
                }
            }
        });
        for c in 0..bands {
            for j in 0..n {
                out.data[j] += partials[c * n + j];
            }
        }
        out
    }

    /// Element-wise `tanh`.
    pub fn tanh(&self) -> Tensor {
        self.map_with(f32::tanh)
    }

    /// Derivative of `tanh` given the *activation output* `y`: `1 - y^2`.
    pub fn tanh_backward(y: &Tensor, grad: &Tensor) -> Tensor {
        assert_eq!(y.shape, grad.shape, "tanh_backward shape mismatch");
        y.zip_with(grad, |y, g| (1.0 - y * y) * g)
    }

    /// Sums `term(x)` over all elements: the historical fixed
    /// left-to-right accumulation below the chunking threshold, fixed
    /// [`REDUCE_CHUNK`]-element partials combined in ascending chunk
    /// order above it (shape-derived either way).
    fn reduce_sum(&self, term: impl Fn(f32) -> f32 + Sync) -> f32 {
        let total = self.data.len();
        if total < REDUCE_PAR_MIN {
            let mut acc = 0.0f32;
            for &x in &self.data {
                acc += term(x);
            }
            return acc;
        }
        let chunks = total.div_ceil(REDUCE_CHUNK);
        let mut partials = vec![0.0f32; chunks];
        let pptr = OutPtr(partials.as_mut_ptr());
        let data = &self.data;
        pool::current().run(chunks, &|c| {
            let lo = c * REDUCE_CHUNK;
            let hi = (lo + REDUCE_CHUNK).min(total);
            let mut acc = 0.0f32;
            for &x in &data[lo..hi] {
                acc += term(x);
            }
            // SAFETY: each chunk owns partial slot `c`.
            unsafe { *pptr.ptr().add(c) = acc };
        });
        let mut acc = 0.0f32;
        for &p in &partials {
            acc += p;
        }
        acc
    }

    /// Mean of all elements (fixed, shape-derived accumulation order).
    pub fn mean(&self) -> f32 {
        self.reduce_sum(|x| x) / self.data.len() as f32
    }

    /// Sum of squared elements (fixed, shape-derived accumulation order).
    pub fn sum_sq(&self) -> f32 {
        self.reduce_sum(|x| x * x)
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.sum_sq().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_is_bitwise_repeatable() {
        let a = Tensor::from_vec((0..64).map(|i| (i as f32).sin()).collect(), &[8, 8]);
        let b = Tensor::from_vec((0..64).map(|i| (i as f32).cos()).collect(), &[8, 8]);
        let c1 = a.matmul(&b);
        let c2 = a.matmul(&b);
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    fn wavy(rows: usize, cols: usize, phase: f32) -> Tensor {
        Tensor::from_vec(
            (0..rows * cols)
                .map(|i| (i as f32 * 0.37 + phase).sin())
                .collect(),
            &[rows, cols],
        )
    }

    fn assert_bitwise_eq(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn tiled_matmul_matches_naive_on_ragged_shapes() {
        // Tail paths (m % MR, n % NR, 1xN, Nx1) and segment-crossing k
        // must keep the same per-element contract order as the reference
        // kernel.
        for &(m, k, n) in &[
            (7usize, 5usize, 3usize),
            (123, 77, 50),
            (1, 64, 300),
            (300, 64, 1),
            (33, 16, 17),
            (4, 1, 16),
            (9, 300, 33),
            (5, 513, 17),
        ] {
            let a = wavy(m, k, 0.1);
            let b = wavy(k, n, 0.7);
            assert_bitwise_eq(&a.matmul(&b), &a.matmul_naive(&b), &format!("{m}x{k}x{n}"));
        }
    }

    #[test]
    fn matmul_zero_k_yields_positive_zero() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[3, 4]);
        for &v in c.data() {
            assert_eq!(v.to_bits(), 0, "k = 0 must give +0.0 exactly");
        }
    }

    #[test]
    fn matmul_k_one_is_single_fma() {
        // k = 1: one segment, one fused op from +0.0 — exactly round(a*b).
        let a = Tensor::from_vec(vec![1.1, -2.3, 3.7], &[3, 1]);
        let b = Tensor::from_vec(vec![0.9, -1.7], &[1, 2]);
        let c = a.matmul(&b);
        for i in 0..3 {
            for j in 0..2 {
                let want = a.data()[i].mul_add(b.data()[j], 0.0);
                assert_eq!(c.at(i, j).to_bits(), want.to_bits(), "({i}, {j})");
            }
        }
    }

    #[test]
    fn matmul_propagates_nan_from_zero_lhs_rows() {
        // Regression: an early kernel skipped `a == 0.0`, silently
        // dropping `0.0 * NaN = NaN` and `0.0 * inf = NaN`.
        let a = Tensor::from_vec(vec![0.0, 0.0, 1.0, 2.0], &[2, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 1.0, 2.0], &[2, 2]);
        let c = a.matmul(&b);
        assert!(c.at(0, 0).is_nan(), "0*NaN must surface as NaN");
        assert!(c.at(0, 1).is_nan(), "0*inf must surface as NaN");
        assert_bitwise_eq(&c, &a.matmul_naive(&b), "NaN propagation");
    }

    /// Builds the `[k, n]` rhs whose every column is the pattern `col`.
    fn columns_of(col: &[f32], n: usize) -> Tensor {
        let k = col.len();
        let mut data = vec![0.0f32; k * n];
        for (kk, &v) in col.iter().enumerate() {
            for j in 0..n {
                data[kk * n + j] = v;
            }
        }
        Tensor::from_vec(data, &[k, n])
    }

    #[test]
    fn kat_segment_boundaries_pin_k_seg_256() {
        // Known-answer test pinning the fixed-split boundaries at k
        // multiples of 256. With a = all-ones and the column pattern
        //   b[0] = 1e8, b[1..256] = 1, b[256] = -1e8, b[257..512] = 1,
        //   b[512..520] = 1
        // the three segment partials are exactly 1e8 (the +1s are
        // absorbed: ulp(1e8) = 8), -1e8, and 8.0; the TwoSum combine
        // telescopes them to exactly 8.0. An unsegmented chain would give
        // 263.0, and segments of 128 would give 264.0 — so any change to
        // K_SEG or to the combine order fails this test.
        let k = 520;
        let mut col = vec![1.0f32; k];
        col[0] = 1e8;
        col[256] = -1e8;
        // m = 5, n = 17: exercises full tiles, the padded tail panel and
        // the tail row, all of which must agree on the pinned value.
        let a = Tensor::from_vec(vec![1.0; 5 * k], &[5, k]);
        let b = columns_of(&col, 17);
        for t in [a.matmul(&b), a.matmul_naive(&b)] {
            for (i, &v) in t.data().iter().enumerate() {
                assert_eq!(v.to_bits(), 8.0f32.to_bits(), "element {i}: {v}");
            }
        }
    }

    #[test]
    fn kat_twosum_combine_preserves_cancelled_partials() {
        // Column pattern: b[0] = 1, b[256] = 1e8, b[512] = -1e8, rest 0.
        // Segment partials are exactly 1, 1e8, -1e8. Plain ascending
        // summation (and Kahan, whose compensation is rounded away here)
        // would give 0; the TwoSum error term preserves the swamped 1.
        let k = 513;
        let mut col = vec![0.0f32; k];
        col[0] = 1.0;
        col[256] = 1e8;
        col[512] = -1e8;
        let a = Tensor::from_vec(vec![1.0; 5 * k], &[5, k]);
        let b = columns_of(&col, 17);
        for t in [a.matmul(&b), a.matmul_naive(&b)] {
            for (i, &v) in t.data().iter().enumerate() {
                assert_eq!(v.to_bits(), 1.0f32.to_bits(), "element {i}: {v}");
            }
        }
    }

    #[test]
    fn kat_accumulation_is_fused_not_mul_then_add() {
        // [x, x] · [x, -x] under mul-then-add is exactly 0 (both products
        // round identically); under the fused contract it is the rounding
        // error of x², which is nonzero for x = 1.1.
        let x = 1.1f32;
        let a = Tensor::from_vec(vec![x, x], &[1, 2]);
        let b = Tensor::from_vec(vec![x, -x], &[2, 1]);
        let want = (-x).mul_add(x, x.mul_add(x, 0.0));
        assert_ne!(want, 0.0, "test premise: fused result must differ");
        let got = a.matmul(&b);
        assert_eq!(got.data()[0].to_bits(), want.to_bits());
        assert_eq!(
            a.matmul_naive(&b).data()[0].to_bits(),
            want.to_bits(),
            "naive"
        );
    }

    #[test]
    fn portable_twin_matches_vector_path() {
        // On FMA hardware this proves scalar fmaf == vfmadd bitwise; on
        // anything else both runs take the portable path and the test
        // degenerates to repeatability.
        let a = wavy(37, 300, 0.3);
        let b = wavy(300, 41, 1.7);
        let fast = a.matmul(&b);
        set_force_portable(true);
        let portable = a.matmul(&b);
        set_force_portable(false);
        assert_bitwise_eq(&fast, &portable, "portable twin");
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        for &(m, k, n) in &[
            (8usize, 16usize, 16usize),
            (23, 19, 37),
            (5, 3, 2),
            (9, 513, 33),
        ] {
            let a = wavy(m, k, 0.2);
            let b = wavy(n, k, 0.9);
            assert_bitwise_eq(
                &a.matmul_t(&b),
                &a.matmul(&b.transpose()),
                &format!("matmul_t {m}x{k}x{n}"),
            );
        }
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        for &(r, m, n) in &[
            (8usize, 16usize, 16usize),
            (19, 23, 37),
            (3, 5, 2),
            (513, 9, 33),
        ] {
            let a = wavy(r, m, 0.4);
            let b = wavy(r, n, 1.3);
            assert_bitwise_eq(
                &a.t_matmul(&b),
                &a.transpose().matmul(&b),
                &format!("t_matmul {r}:{m}x{n}"),
            );
        }
    }

    #[test]
    fn matmul_batch_matches_individual_calls() {
        let a = wavy(48, 96, 0.1);
        let b = wavy(96, 64, 0.5);
        let c = wavy(48, 96, 0.9);
        let d = wavy(64, 96, 1.3);
        let e = wavy(96, 48, 1.7);
        let f = wavy(96, 64, 2.1);
        let batch =
            Tensor::matmul_batch(&[(MmOp::Nn, &a, &b), (MmOp::Nt, &c, &d), (MmOp::Tn, &e, &f)]);
        assert_bitwise_eq(&batch[0], &a.matmul(&b), "batch Nn");
        assert_bitwise_eq(&batch[1], &c.matmul_t(&d), "batch Nt");
        assert_bitwise_eq(&batch[2], &e.t_matmul(&f), "batch Tn");
    }

    #[test]
    fn parallel_matmul_is_worker_count_invariant() {
        // Big enough to cross PAR_MIN_FLOPS and actually fan out.
        let a = wavy(160, 96, 0.3);
        let b = wavy(96, 110, 1.1);
        let reference = pool::with_threads(1, || a.matmul(&b));
        for threads in [2, 4, 8] {
            let c = pool::with_threads(threads, || a.matmul(&b));
            assert_bitwise_eq(&c, &reference, &format!("{threads} workers"));
        }
        assert_bitwise_eq(&reference, &a.matmul_naive(&b), "vs naive");
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[3, 2]);
        assert_eq!(a.transpose().at(0, 1), 4.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[1, 2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn add_row_broadcasts() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[1, 2]);
        assert_eq!(x.add_row(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn sum_rows_reduces() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(x.sum_rows().shape(), &[1, 2]);
    }

    #[test]
    fn tanh_and_backward() {
        let x = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let y = x.tanh();
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 0.7615942).abs() < 1e-6);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let dx = Tensor::tanh_backward(&y, &g);
        assert_eq!(dx.data()[0], 1.0); // 1 - tanh(0)^2
    }

    #[test]
    fn reductions() {
        let x = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        assert_eq!(x.mean(), 3.5);
        assert_eq!(x.sum_sq(), 25.0);
        assert_eq!(x.norm(), 5.0);
    }

    #[test]
    fn parallel_elementwise_and_reductions_are_worker_count_invariant() {
        // Above ELEM_PAR_MIN / REDUCE_PAR_MIN, so the chunked paths run.
        let x = wavy(260, 300, 0.0);
        let y = wavy(260, 300, 2.0);
        let reference = pool::with_threads(1, || {
            (
                x.add(&y),
                x.hadamard(&y),
                x.tanh(),
                x.sum_rows(),
                x.mean(),
                x.sum_sq(),
            )
        });
        for threads in [2, 8] {
            let got = pool::with_threads(threads, || {
                (
                    x.add(&y),
                    x.hadamard(&y),
                    x.tanh(),
                    x.sum_rows(),
                    x.mean(),
                    x.sum_sq(),
                )
            });
            assert_bitwise_eq(&got.0, &reference.0, "add");
            assert_bitwise_eq(&got.1, &reference.1, "hadamard");
            assert_bitwise_eq(&got.2, &reference.2, "tanh");
            assert_bitwise_eq(&got.3, &reference.3, "sum_rows");
            assert_eq!(got.4.to_bits(), reference.4.to_bits(), "mean");
            assert_eq!(got.5.to_bits(), reference.5.to_bits(), "sum_sq");
        }
    }

    #[test]
    fn accessors() {
        let x = Tensor::zeros(&[3, 4]);
        assert_eq!(x.rows(), 3);
        assert_eq!(x.cols(), 4);
        assert_eq!(x.numel(), 12);
        assert_eq!(x.to_string(), "Tensor[3, 4]");
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn bad_matmul_panics() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }
}
