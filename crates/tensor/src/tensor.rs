//! Dense f32 tensors with deterministic operations.
//!
//! Every reduction iterates in a single fixed order, so results are
//! bit-reproducible across runs and platforms (IEEE-754 f32 arithmetic is
//! deterministic when the operation order is fixed — the property the
//! paper's "intra-subnet reproducibility" relies on deterministic CUDA
//! libraries for).

use std::fmt;

/// A dense row-major f32 tensor of rank 1 or 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat `data` vector with the given `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates the `n` x `n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of rows of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() requires a matrix");
        self.shape[0]
    }

    /// Number of columns of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() requires a matrix");
        self.shape[1]
    }

    /// Flat element view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat element view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if out of range or the tensor is not rank 2.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at() requires a matrix");
        assert!(
            row < self.shape[0] && col < self.shape[1],
            "index out of range"
        );
        self.data[row * self.shape[1] + col]
    }

    /// Matrix product `self x rhs` with fixed i-k-j loop order.
    ///
    /// # Panics
    ///
    /// Panics if shapes are not `[m, k]` x `[k, n]`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be a matrix");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be a matrix");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for kk in 0..k {
                let a = self.data[i * k + kk];
                if a == 0.0 {
                    continue;
                }
                let row = &rhs.data[kk * n..(kk + 1) * n];
                let dst = &mut out.data[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row) {
                    *d += a * b;
                }
            }
        }
        out
    }

    /// Transpose of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * s).collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// Adds a row vector `bias` (shape `[1, n]` or `[n]`) to every row.
    ///
    /// # Panics
    ///
    /// Panics if widths do not match.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        let n = *self.shape.last().expect("non-scalar");
        assert_eq!(bias.numel(), n, "bias width mismatch");
        let mut out = self.clone();
        for row in out.data.chunks_mut(n) {
            for (d, &b) in row.iter_mut().zip(&bias.data) {
                *d += b;
            }
        }
        out
    }

    /// Sums over rows, producing a `[1, n]` tensor (fixed top-to-bottom
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "sum_rows requires a matrix");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[1, n]);
        for i in 0..m {
            for j in 0..n {
                out.data[j] += self.data[i * n + j];
            }
        }
        out
    }

    /// Element-wise `tanh`.
    pub fn tanh(&self) -> Tensor {
        let data = self.data.iter().map(|a| a.tanh()).collect();
        Tensor::from_vec(data, &self.shape)
    }

    /// Derivative of `tanh` given the *activation output* `y`: `1 - y^2`.
    pub fn tanh_backward(y: &Tensor, grad: &Tensor) -> Tensor {
        assert_eq!(y.shape, grad.shape, "tanh_backward shape mismatch");
        let data = y
            .data
            .iter()
            .zip(&grad.data)
            .map(|(y, g)| (1.0 - y * y) * g)
            .collect();
        Tensor::from_vec(data, &y.shape)
    }

    /// Mean of all elements (fixed left-to-right accumulation).
    pub fn mean(&self) -> f32 {
        let mut acc = 0.0f32;
        for &x in &self.data {
            acc += x;
        }
        acc / self.data.len() as f32
    }

    /// Sum of squared elements (fixed order).
    pub fn sum_sq(&self) -> f32 {
        let mut acc = 0.0f32;
        for &x in &self.data {
            acc += x * x;
        }
        acc
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.sum_sq().sqrt()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_is_bitwise_repeatable() {
        let a = Tensor::from_vec((0..64).map(|i| (i as f32).sin()).collect(), &[8, 8]);
        let b = Tensor::from_vec((0..64).map(|i| (i as f32).cos()).collect(), &[8, 8]);
        let c1 = a.matmul(&b);
        let c2 = a.matmul(&b);
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[3, 2]);
        assert_eq!(a.transpose().at(0, 1), 4.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[1, 2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn add_row_broadcasts() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[1, 2]);
        assert_eq!(x.add_row(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn sum_rows_reduces() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(x.sum_rows().data(), &[4.0, 6.0]);
        assert_eq!(x.sum_rows().shape(), &[1, 2]);
    }

    #[test]
    fn tanh_and_backward() {
        let x = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let y = x.tanh();
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 0.7615942).abs() < 1e-6);
        let g = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let dx = Tensor::tanh_backward(&y, &g);
        assert_eq!(dx.data()[0], 1.0); // 1 - tanh(0)^2
    }

    #[test]
    fn reductions() {
        let x = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        assert_eq!(x.mean(), 3.5);
        assert_eq!(x.sum_sq(), 25.0);
        assert_eq!(x.norm(), 5.0);
    }

    #[test]
    fn accessors() {
        let x = Tensor::zeros(&[3, 4]);
        assert_eq!(x.rows(), 3);
        assert_eq!(x.cols(), 4);
        assert_eq!(x.numel(), 12);
        assert_eq!(x.to_string(), "Tensor[3, 4]");
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn bad_matmul_panics() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }
}
