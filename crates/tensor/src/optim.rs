//! Deterministic optimizers.
//!
//! Updates apply element-by-element in index order, so every step is
//! bitwise deterministic. Stateful optimizers (momentum) key their state
//! by [`LayerRef`]; under CSP the writes to each layer happen in
//! sequential order, so the optimizer state evolves identically on any
//! number of GPUs — reproducibility covers the optimizer, not just the
//! weights.

use crate::layers::{DenseGrads, DenseParams};
use crate::tensor::Tensor;
use naspipe_supernet::layer::LayerRef;
use std::collections::BTreeMap;

/// Plain SGD: `w <- w - lr * g`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an optimizer with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self { lr }
    }

    /// Applies one update step to `params` in place.
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes do not match the parameters.
    pub fn step(&self, params: &mut DenseParams, grads: &DenseGrads) {
        assert_eq!(
            params.weight.shape(),
            grads.weight.shape(),
            "weight shape mismatch"
        );
        assert_eq!(
            params.bias.shape(),
            grads.bias.shape(),
            "bias shape mismatch"
        );
        for (w, g) in params.weight.data_mut().iter_mut().zip(grads.weight.data()) {
            *w -= self.lr * g;
        }
        for (b, g) in params.bias.data_mut().iter_mut().zip(grads.bias.data()) {
            *b -= self.lr * g;
        }
    }
}

/// SGD with classical momentum and decoupled weight decay:
///
/// ```text
/// v <- mu * v + g + wd * w
/// w <- w - lr * v
/// ```
///
/// Velocity state is held per layer, created lazily at a layer's first
/// update.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentumSgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: BTreeMap<LayerRef, DenseGrads>,
}

impl MomentumSgd {
    /// Creates the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive, or `momentum`/`weight_decay` are
    /// outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(
            (0.0..1.0).contains(&weight_decay),
            "weight_decay must be in [0, 1)"
        );
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: BTreeMap::new(),
        }
    }

    /// Reassembles an optimizer from serialized state — the inverse of
    /// reading [`lr`](Self::lr)/[`momentum`](Self::momentum)/
    /// [`weight_decay`](Self::weight_decay)/[`velocity`](Self::velocity).
    /// Restoring the exact velocity map is what makes a resumed run
    /// bitwise-continue where the snapshot left off.
    ///
    /// # Panics
    ///
    /// Panics if the coefficients are out of range (see [`new`](Self::new)).
    pub fn from_state(
        lr: f32,
        momentum: f32,
        weight_decay: f32,
        velocity: BTreeMap<LayerRef, DenseGrads>,
    ) -> Self {
        let mut opt = Self::new(lr, momentum, weight_decay);
        opt.velocity = velocity;
        opt
    }

    /// The configured learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// The configured momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// The configured decoupled weight-decay coefficient.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// The per-layer velocity state, in layer order.
    pub fn velocity(&self) -> &BTreeMap<LayerRef, DenseGrads> {
        &self.velocity
    }

    /// Number of layers with live velocity state.
    pub fn tracked_layers(&self) -> usize {
        self.velocity.len()
    }

    /// Applies one update step to `layer`'s parameters in place.
    ///
    /// # Panics
    ///
    /// Panics if gradient shapes do not match the parameters.
    pub fn step(&mut self, layer: LayerRef, params: &mut DenseParams, grads: &DenseGrads) {
        assert_eq!(
            params.weight.shape(),
            grads.weight.shape(),
            "weight shape mismatch"
        );
        assert_eq!(
            params.bias.shape(),
            grads.bias.shape(),
            "bias shape mismatch"
        );
        let v = self.velocity.entry(layer).or_insert_with(|| DenseGrads {
            weight: Tensor::zeros(params.weight.shape()),
            bias: Tensor::zeros(params.bias.shape()),
        });
        let mu = self.momentum;
        let wd = self.weight_decay;
        for ((w, g), vw) in params
            .weight
            .data_mut()
            .iter_mut()
            .zip(grads.weight.data())
            .zip(v.weight.data_mut())
        {
            *vw = mu * *vw + g + wd * *w;
            *w -= self.lr * *vw;
        }
        for ((b, g), vb) in params
            .bias
            .data_mut()
            .iter_mut()
            .zip(grads.bias.data())
            .zip(v.bias.data_mut())
        {
            *vb = mu * *vb + g + wd * *b;
            *b -= self.lr * *vb;
        }
    }

    /// Bitwise fingerprint over the velocity state (layer order) — for
    /// asserting optimizer-state reproducibility.
    pub fn state_hash(&self) -> u64 {
        let mut h = crate::hash::BitHasher::new();
        for v in self.velocity.values() {
            h.write_tensor(&v.weight);
            h.write_tensor(&v.bias);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (DenseParams, DenseGrads) {
        let params = DenseParams {
            weight: Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            bias: Tensor::from_vec(vec![0.5, -0.5], &[1, 2]),
        };
        let grads = DenseGrads {
            weight: Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[2, 2]),
            bias: Tensor::from_vec(vec![1.0, -1.0], &[1, 2]),
        };
        (params, grads)
    }

    #[test]
    fn step_descends() {
        let (mut p, g) = tiny();
        Sgd::new(0.1).step(&mut p, &g);
        assert_eq!(p.weight.data(), &[0.9, 1.9, 2.9, 3.9]);
        assert_eq!(p.bias.data(), &[0.4, -0.4]);
    }

    #[test]
    fn step_is_bitwise_deterministic() {
        let (p0, g) = tiny();
        let mut a = p0.clone();
        let mut b = p0;
        let opt = Sgd::new(0.01);
        for _ in 0..100 {
            opt.step(&mut a, &g);
            opt.step(&mut b, &g);
        }
        for (x, y) in a.weight.data().iter().zip(b.weight.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let (mut p, g) = tiny();
        let layer = LayerRef::new(0, 0);
        let mut opt = MomentumSgd::new(0.1, 0.9, 0.0);
        // First step: v = g, w -= 0.1 * g.
        opt.step(layer, &mut p, &g);
        assert_eq!(p.weight.data()[0], 0.9);
        // Second step: v = 0.9*1 + 1 = 1.9, w = 0.9 - 0.19 = 0.71.
        opt.step(layer, &mut p, &g);
        assert!((p.weight.data()[0] - 0.71).abs() < 1e-6);
        assert_eq!(opt.tracked_layers(), 1);
        assert_eq!(opt.momentum(), 0.9);
    }

    #[test]
    fn momentum_with_zero_mu_equals_plain_sgd() {
        let (p0, g) = tiny();
        let mut plain = p0.clone();
        Sgd::new(0.1).step(&mut plain, &g);
        let mut with_momentum = p0;
        MomentumSgd::new(0.1, 0.0, 0.0).step(LayerRef::new(0, 0), &mut with_momentum, &g);
        assert_eq!(plain, with_momentum);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let (mut p, _) = tiny();
        let zero_grads = DenseGrads {
            weight: Tensor::zeros(&[2, 2]),
            bias: Tensor::zeros(&[1, 2]),
        };
        let before = p.weight.data()[3];
        MomentumSgd::new(0.1, 0.0, 0.01).step(LayerRef::new(0, 0), &mut p, &zero_grads);
        assert!(p.weight.data()[3].abs() < before.abs());
    }

    #[test]
    fn per_layer_state_is_independent() {
        let (mut p1, g) = tiny();
        let mut p2 = p1.clone();
        let mut opt = MomentumSgd::new(0.1, 0.9, 0.0);
        opt.step(LayerRef::new(0, 0), &mut p1, &g);
        opt.step(LayerRef::new(1, 0), &mut p2, &g);
        // Both got a first step (v = g), so equal updates.
        assert_eq!(p1, p2);
        assert_eq!(opt.tracked_layers(), 2);
    }

    #[test]
    fn state_hash_tracks_velocity() {
        let (mut p, g) = tiny();
        let mut opt = MomentumSgd::new(0.1, 0.9, 0.0);
        let h0 = opt.state_hash();
        opt.step(LayerRef::new(0, 0), &mut p, &g);
        assert_ne!(opt.state_hash(), h0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn bad_lr_panics() {
        Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn bad_momentum_panics() {
        MomentumSgd::new(0.1, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "weight shape mismatch")]
    fn shape_mismatch_panics() {
        let (mut p, _) = tiny();
        let bad = DenseGrads {
            weight: Tensor::zeros(&[1, 1]),
            bias: Tensor::zeros(&[1, 2]),
        };
        Sgd::new(0.1).step(&mut p, &bad);
    }
}
