//! Deterministic numeric substrate for reproducible supernet training.
//!
//! The paper's reproducibility property (Definition 1) is *bitwise*
//! equality of all layer parameters after training, across repeated runs on
//! clusters of different sizes. Demonstrating it requires real floating-
//! point training whose only source of divergence is the read/write
//! interleaving on shared layers. This crate provides that substrate:
//!
//! * [`tensor::Tensor`] — dense f32 tensors whose every operation iterates
//!   in a fixed order (no data-dependent reassociation), so identical
//!   operand sequences give bit-identical results on any platform,
//! * [`layers`] — explicit forward/backward dense layers,
//! * [`model::NumericSupernet`] + [`model::ParamStore`] — a trainable
//!   supernet holding one small layer per (block, choice) candidate,
//! * [`optim::Sgd`] — deterministic SGD,
//! * [`data::SyntheticDataset`] — seed-reproducible stand-ins for
//!   WNMT/ImageNet batches,
//! * [`pool`] — a hand-rolled scoped worker pool the tensor kernels fan
//!   out on; chunk boundaries derive from shapes (never thread counts),
//!   so results stay bitwise identical at any worker count,
//! * [`hash`] — FNV-1a hashing of parameter bit patterns for cheap bitwise
//!   equality checks.
//!
//! # Example
//!
//! ```
//! use naspipe_tensor::tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod data;
pub mod hash;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod pool;
pub mod tensor;

pub use model::{NumericSupernet, ParamStore};
pub use tensor::{MmOp, Tensor};
