//! Property tests of the numeric substrate's determinism and calculus.

#![cfg(feature = "proptest-tests")]

use naspipe_supernet::layer::Domain;
use naspipe_supernet::space::SearchSpace;
use naspipe_supernet::subnet::{Subnet, SubnetId};
use naspipe_tensor::data::SyntheticDataset;
use naspipe_tensor::hash::hash_tensors;
use naspipe_tensor::layers::{dense_backward, dense_forward, DenseParams};
use naspipe_tensor::model::{NumericSupernet, ParamStore};
use naspipe_tensor::pool;
use naspipe_tensor::tensor::{MmOp, Tensor, K_SEG};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, 9).prop_map(|v| Tensor::from_vec(v, &[3, 3]))
}

proptest! {
    /// Matmul distributes over addition up to float tolerance, and is
    /// bitwise repeatable.
    #[test]
    fn matmul_distributes(a in small_matrix(), b in small_matrix(), c in small_matrix()) {
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
        let again = a.add(&b).matmul(&c);
        for (x, y) in lhs.data().iter().zip(again.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The analytic gradient matches finite differences for random
    /// parameters, inputs, and residual scales.
    #[test]
    fn gradients_match_finite_differences(
        seed in 0u64..1_000,
        scale in 0.1f32..1.0,
        idx in 0usize..16,
    ) {
        let mut rng = naspipe_supernet::rng::DetRng::new(seed);
        let p = DenseParams::init(4, &mut rng);
        let x = Tensor::from_vec((0..4).map(|_| rng.next_f32() - 0.5).collect(), &[1, 4]);
        let (y, cache) = dense_forward(&p, &x, scale);
        let grad_out = Tensor::from_vec(vec![1.0; y.numel()], y.shape());
        let (_, grads) = dense_backward(&p, &cache, &grad_out, scale);
        let eps = 1e-3f32;
        let mut pp = p.clone();
        pp.weight.data_mut()[idx] += eps;
        let (yp, _) = dense_forward(&pp, &x, scale);
        let mut pm = p.clone();
        pm.weight.data_mut()[idx] -= eps;
        let (ym, _) = dense_forward(&pm, &x, scale);
        let numeric: f32 =
            yp.data().iter().zip(ym.data()).map(|(a, b)| a - b).sum::<f32>() / (2.0 * eps);
        prop_assert!(
            (numeric - grads.weight.data()[idx]).abs() < 2e-2,
            "numeric {numeric} vs analytic {}",
            grads.weight.data()[idx]
        );
    }

    /// Training any subnet stream twice gives bitwise-identical stores
    /// (determinism of the full numeric stack), and touches only the
    /// activated layers.
    #[test]
    fn train_steps_are_deterministic_and_local(
        choices in proptest::collection::vec(proptest::collection::vec(0u32..3, 5), 1..10),
        seed in 0u64..100,
    ) {
        let space = SearchSpace::uniform(Domain::Nlp, 5, 3);
        let data = SyntheticDataset::new(seed, 2, 4);
        let run = || {
            let mut store = ParamStore::init(&space, 4, seed);
            let mut engine = NumericSupernet::new(0.05).with_residual_scale(0.4);
            for (i, c) in choices.iter().enumerate() {
                let s = Subnet::new(SubnetId(i as u64), c.clone());
                let (x, y) = data.step_batch(i as u64);
                engine.train_step(&mut store, &s, &x, &y);
            }
            store
        };
        let s1 = run();
        let s2 = run();
        prop_assert_eq!(s1.bitwise_hash(), s2.bitwise_hash());
        // Untouched layers stay at init.
        let init = ParamStore::init(&space, 4, seed);
        for b in 0..5u32 {
            for c in 0..3u32 {
                let l = naspipe_supernet::layer::LayerRef::new(b, c);
                let used = choices.iter().any(|row| row[b as usize] == c);
                if !used {
                    prop_assert_eq!(s1.layer(l), init.layer(l), "untouched layer changed");
                }
            }
        }
    }

    /// The bitwise hash separates stores that differ in any single ULP.
    #[test]
    fn hash_is_ulp_sensitive(values in proptest::collection::vec(-10.0f32..10.0, 1..32), idx in 0usize..32) {
        prop_assume!(idx < values.len());
        let t = Tensor::from_vec(values.clone(), &[values.len()]);
        let mut bumped = values;
        let bits = bumped[idx].to_bits();
        bumped[idx] = f32::from_bits(bits ^ 1);
        let tb = Tensor::from_vec(bumped, &[t.numel()]);
        prop_assert_ne!(hash_tensors([&t]), hash_tensors([&tb]));
    }

    /// Synthetic data is a pure function of (seed, step): any access
    /// pattern yields the same batches.
    #[test]
    fn dataset_is_pure(seed in 0u64..1_000, mut steps in proptest::collection::vec(0u64..50, 1..20)) {
        let d = SyntheticDataset::new(seed, 2, 4);
        let first: Vec<Tensor> = steps.iter().map(|&s| d.step_batch(s).0).collect();
        steps.reverse();
        let second: Vec<Tensor> = steps.iter().map(|&s| d.step_batch(s).0).collect();
        for (a, b) in first.iter().zip(second.iter().rev()) {
            prop_assert_eq!(a, b);
        }
    }
}

/// A deterministic dense operand (mixed sign, no zeros, no patterns the
/// kernels could shortcut on).
fn wavy(rows: usize, cols: usize, phase: f32) -> Tensor {
    Tensor::from_vec(
        (0..rows * cols)
            .map(|i| (i as f32 * 0.619 + phase).sin() + 0.013)
            .collect(),
        &[rows, cols],
    )
}

fn assert_pool_invariant(
    label: &str,
    f: impl Fn() -> Tensor,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let reference = pool::with_threads(1, &f);
    for threads in [2usize, 4, 8] {
        let parallel = pool::with_threads(threads, &f);
        prop_assert_eq!(reference.shape(), parallel.shape(), "{} shape", label);
        for (i, (a, b)) in reference.data().iter().zip(parallel.data()).enumerate() {
            prop_assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} diverged at element {} with {} workers",
                label,
                i,
                threads
            );
        }
    }
    Ok(())
}

// Worker-count invariance of every parallelised kernel. The shapes are
// chosen above the parallel-dispatch thresholds (so the pool genuinely
// fans out) and ragged (so tile tails and uneven chunk splits are
// exercised). Cases are few but each one covers every op at three pool
// sizes against the serial result.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `matmul`, `matmul_t` and `t_matmul` are bitwise identical at
    /// 1/2/4/8 workers on ragged above-threshold shapes.
    #[test]
    fn matmul_family_is_worker_count_invariant(
        m in 33usize..72,
        k in 9usize..48,
        tail in 1usize..48,
        phase in 0.0f32..6.0,
    ) {
        // Force m*k*n past the parallel threshold regardless of m and k.
        let n = (1usize << 20) / (m * k) + tail;
        let a = wavy(m, k, phase);
        let b = wavy(k, n, phase + 1.0);
        let c = wavy(n, k, phase + 2.0);
        let e = wavy(k, m, phase + 3.0);
        assert_pool_invariant("matmul", || a.matmul(&b))?;
        assert_pool_invariant("matmul_t", || a.matmul_t(&c))?;
        assert_pool_invariant("t_matmul", || e.t_matmul(&b))?;
        // And the tiled result still equals the naive reference kernel.
        let tiled = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        for (x, y) in tiled.data().iter().zip(naive.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Every parallelised elementwise and reduction op is bitwise
    /// identical at 1/2/4/8 workers on above-threshold shapes.
    #[test]
    fn elementwise_and_reductions_are_worker_count_invariant(
        rows in 200usize..280,
        cols in 330usize..420,
        phase in 0.0f32..6.0,
    ) {
        let x = wavy(rows, cols, phase);
        let y = wavy(rows, cols, phase + 1.0);
        let bias = wavy(1, cols, phase + 2.0);
        assert_pool_invariant("add", || x.add(&y))?;
        assert_pool_invariant("sub", || x.sub(&y))?;
        assert_pool_invariant("hadamard", || x.hadamard(&y))?;
        assert_pool_invariant("scale", || x.scale(1.75))?;
        assert_pool_invariant("tanh", || x.tanh())?;
        assert_pool_invariant("tanh_backward", || Tensor::tanh_backward(&x.tanh(), &y))?;
        assert_pool_invariant("add_row", || x.add_row(&bias))?;
        assert_pool_invariant("sum_rows", || x.sum_rows())?;
        let serial = pool::with_threads(1, || (x.mean(), x.sum_sq(), x.norm()));
        for threads in [2usize, 4, 8] {
            let parallel = pool::with_threads(threads, || (x.mean(), x.sum_sq(), x.norm()));
            prop_assert_eq!(serial.0.to_bits(), parallel.0.to_bits(), "mean");
            prop_assert_eq!(serial.1.to_bits(), parallel.1.to_bits(), "sum_sq");
            prop_assert_eq!(serial.2.to_bits(), parallel.2.to_bits(), "norm");
        }
    }

    /// `matmul_batch` over mixed op kinds is bitwise equal to the naive
    /// reference of every item and invariant across 1/2/4/8 workers,
    /// including contraction dimensions straddling the K_SEG boundary
    /// (so the packed, batched and segmented paths all agree).
    #[test]
    fn batched_matmul_matches_naive_and_is_worker_invariant(
        m in 5usize..40,
        k in 1usize..520,
        n in 5usize..40,
        phase in 0.0f32..6.0,
    ) {
        let a = wavy(m, k, phase);
        let b = wavy(k, n, phase + 1.0);
        let c = wavy(n, k, phase + 2.0);
        let e = wavy(k, m, phase + 3.0);
        let items = [(MmOp::Nn, &a, &b), (MmOp::Nt, &a, &c), (MmOp::Tn, &e, &b)];
        let reference = [
            a.matmul_naive(&b),
            a.matmul_naive(&c.transpose()),
            e.transpose().matmul_naive(&b),
        ];
        for threads in [1usize, 2, 4, 8] {
            let outs = pool::with_threads(threads, || Tensor::matmul_batch(&items));
            prop_assert_eq!(outs.len(), reference.len());
            for (oi, (got, want)) in outs.iter().zip(&reference).enumerate() {
                prop_assert_eq!(got.shape(), want.shape(), "item {} shape", oi);
                for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
                    prop_assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "batch item {} diverged from naive at element {} with {} workers",
                        oi, i, threads
                    );
                }
            }
        }
    }

    /// K = 0 and K = 1 edges: the empty contraction is exactly +0.0 in
    /// every element (never -0.0, never a skipped write), K = 1 is the
    /// single fused multiply-add, and both match the naive reference
    /// bitwise at every pool size.
    #[test]
    fn k_edge_cases_are_bitwise_deterministic(
        m in 1usize..48,
        n in 1usize..48,
        phase in 0.0f32..6.0,
    ) {
        let a0 = Tensor::from_vec(vec![], &[m, 0]);
        let b0 = Tensor::from_vec(vec![], &[0, n]);
        let a1 = wavy(m, 1, phase);
        let b1 = wavy(1, n, phase + 1.0);
        for threads in [1usize, 2, 4, 8] {
            let (zero, one) = pool::with_threads(threads, || (a0.matmul(&b0), a1.matmul(&b1)));
            for &v in zero.data() {
                prop_assert_eq!(v.to_bits(), 0, "k=0 element must be +0.0");
            }
            for (x, y) in one.data().iter().zip(a1.matmul_naive(&b1).data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "k=1 diverged from naive");
            }
        }
    }

    /// The zero-skip regression guard: a zero row in A against NaN/inf
    /// in B must surface NaN (IEEE `0.0 * NaN = NaN`, `0.0 * inf =
    /// NaN`), bitwise equal to the naive reference and invariant across
    /// pool sizes — an "optimised" kernel that skips zero operands would
    /// silently return 0 here.
    #[test]
    fn zero_times_nan_is_not_skipped(
        k in 2usize..300,
        n in 33usize..64,
        poison_col in 0usize..33,
        phase in 0.0f32..6.0,
    ) {
        let m = 40usize;
        let mut a = wavy(m, k, phase);
        for kk in 0..k {
            a.data_mut()[kk] = 0.0; // row 0 of A is all zeros
        }
        let mut b = wavy(k, n, phase + 1.0);
        let col = poison_col % n;
        b.data_mut()[col] = f32::NAN;
        if n > 1 {
            b.data_mut()[(col + 1) % n] = f32::INFINITY;
        }
        let naive = a.matmul_naive(&b);
        prop_assert!(naive.at(0, col).is_nan(), "0*NaN must surface as NaN");
        for threads in [1usize, 2, 4, 8] {
            let tiled = pool::with_threads(threads, || a.matmul(&b));
            for (i, (x, y)) in tiled.data().iter().zip(naive.data()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "NaN propagation diverged at element {} with {} workers",
                    i, threads
                );
            }
        }
    }
}

/// Known-answer test pinning the fixed-split segment boundaries at
/// multiples of [`K_SEG`] = 256 through the public API: a cancellation
/// pair placed in different 256-element segments survives compensated
/// combination exactly, and would evaluate differently under any other
/// segment length or a flat (unsegmented) accumulation order. A future
/// refactor that silently changes the accumulation order fails here.
#[test]
fn kat_public_api_pins_k_seg_256_segment_boundaries() {
    assert_eq!(K_SEG, 256, "the determinism contract fixes K_SEG at 256");
    let k = 2 * K_SEG + 8;
    let m = 5;
    let n = 17;
    let a = Tensor::from_vec(vec![1.0; m * k], &[m, k]);
    // Column j of B: +1e8 at kk = 0, -1e8 at kk = K_SEG, 1.0 elsewhere.
    // Within segment 0 every subsequent +1.0 is absorbed (ulp(1e8) = 8),
    // so its partial is exactly +1e8; likewise segment 1's is exactly
    // -1e8; segment 2 holds the eight trailing ones. The compensated
    // combination cancels the big partials exactly and the answer is
    // exactly 8.0. A flat (unsegmented) chain gives 263 (the +1e8/-1e8
    // cancel mid-stream, leaving the later ones unabsorbed), and a
    // 128-element segment length gives 264 — so this value pins both
    // the segmentation itself and K_SEG = 256.
    let mut bv = vec![1.0f32; k * n];
    for j in 0..n {
        bv[j] = 1e8;
        bv[K_SEG * n + j] = -1e8;
    }
    let b = Tensor::from_vec(bv, &[k, n]);
    for threads in [1usize, 2, 4, 8] {
        let out = pool::with_threads(threads, || a.matmul(&b));
        for (i, &v) in out.data().iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                8.0f32.to_bits(),
                "element {i} at {threads} workers: got {v}, want exactly 8"
            );
        }
    }
}
