//! A self-contained, registry-free subset of the [criterion] API.
//!
//! The workspace must resolve and build with no network access, so the
//! `crates/bench` micro-benchmarks link against this shim instead of the
//! real criterion (renamed back via `package = "naspipe-criterion"`).
//! It implements exactly the surface the benches use — `Criterion`,
//! `Bencher::iter`, `benchmark_group`/`bench_with_input`,
//! `BenchmarkId::from_parameter`, and the `criterion_group!` /
//! `criterion_main!` macros — measuring wall-clock means with a short
//! warm-up instead of criterion's full statistical machinery.
//!
//! [criterion]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark `name` and prints its mean iteration
    /// time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A parameterised benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label naming only the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }

    /// A `function/parameter` label.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` with `input`, labelled `name/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timing for one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`: a warm-up estimates the cost,
    /// then enough iterations run to fill the target measurement window.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and cost estimate.
        let warm_start = Instant::now();
        black_box(routine());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.mean_ns = Some(total.as_nanos() as f64 / iters as f64);
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        match self.mean_ns {
            Some(ns) => {
                let (value, unit) = if ns >= 1e9 {
                    (ns / 1e9, "s")
                } else if ns >= 1e6 {
                    (ns / 1e6, "ms")
                } else if ns >= 1e3 {
                    (ns / 1e3, "us")
                } else {
                    (ns, "ns")
                };
                println!(
                    "bench {name:<48} {value:>10.3} {unit}/iter ({} iters)",
                    self.iters
                );
            }
            None => println!("bench {name:<48} (no measurement)"),
        }
    }
}

/// Declares a function running each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
