//! Per-stage counters and histograms behind the [`Recorder`] trait.
//!
//! Emission sites in the runtimes call [`Recorder::incr`] /
//! [`Recorder::sample`]; the trait keeps the hot path to an array index
//! and an add, and lets tests substitute [`NullRecorder`] where metrics
//! are irrelevant.

use crate::report::{ObsReport, StageObs};

/// Monotonic per-stage event and time counters.
///
/// Time-valued counters (`StallUs`, `BubbleUs`) accumulate microseconds:
/// simulated time in the event-driven pipeline, wall-clock time in the
/// threaded runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Context-cache access that found the layer resident.
    CacheHit,
    /// Context-cache access that had to fetch the layer.
    CacheMiss,
    /// Layer evicted from the context cache to make room.
    CacheEviction,
    /// Layer prefetched ahead of use.
    CachePrefetch,
    /// Bytes fetched into the context cache.
    CacheBytesFetched,
    /// Bytes evicted from the context cache.
    CacheBytesEvicted,
    /// A ready backward task was dispatched ahead of a ready forward
    /// task (the CSP backward-first priority firing).
    BackwardPreemption,
    /// Forward tasks completed.
    ForwardTask,
    /// Backward tasks completed.
    BackwardTask,
    /// Time the stage sat idle with work queued but inadmissible
    /// (blocked on a causal dependency), in microseconds.
    StallUs,
    /// Time the stage sat idle with nothing queued (pipeline bubble),
    /// in microseconds.
    BubbleUs,
    /// Transient channel fault retried with backoff (fault-tolerant
    /// runtime).
    Retry,
    /// Stage worker respawned by the supervisor after a failure.
    Restart,
    /// Task re-executed after a recovery because its pre-failure effect
    /// was discarded by the checkpoint rollback.
    ReplayedTask,
    /// Compute-pool jobs submitted by this stage's kernels (one job per
    /// fanned-out tensor op). Deterministic: kernels fan out on shape
    /// thresholds, never on the worker count.
    PoolJob,
    /// Compute-pool chunks executed on behalf of this stage's jobs (the
    /// fixed, shape-derived work units). Also worker-count invariant.
    PoolChunk,
    /// Microseconds of compute-pool chunk execution attributed to this
    /// stage's jobs (summed across workers; timing-dependent).
    PoolBusyUs,
    /// Completed CSP-watermark cut persisted to durable storage by this
    /// stage (the stage that closed the cut writes the snapshot).
    DurablePersist,
    /// Run resumed from a durable on-disk snapshot (counted once per
    /// stage per cross-process resume).
    DurableResume,
}

/// Number of [`Counter`] variants; sizes the per-stage counter array.
pub const NUM_COUNTERS: usize = Counter::DurableResume as usize + 1;

impl Counter {
    /// Every variant in declaration (= index) order, so snapshot and
    /// exposition code can iterate the counter array without hardcoding
    /// the variant list twice.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::CacheHit,
        Counter::CacheMiss,
        Counter::CacheEviction,
        Counter::CachePrefetch,
        Counter::CacheBytesFetched,
        Counter::CacheBytesEvicted,
        Counter::BackwardPreemption,
        Counter::ForwardTask,
        Counter::BackwardTask,
        Counter::StallUs,
        Counter::BubbleUs,
        Counter::Retry,
        Counter::Restart,
        Counter::ReplayedTask,
        Counter::PoolJob,
        Counter::PoolChunk,
        Counter::PoolBusyUs,
        Counter::DurablePersist,
        Counter::DurableResume,
    ];

    /// Stable snake_case name used in the Prometheus exposition and the
    /// time-series JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CacheHit => "cache_hit",
            Counter::CacheMiss => "cache_miss",
            Counter::CacheEviction => "cache_eviction",
            Counter::CachePrefetch => "cache_prefetch",
            Counter::CacheBytesFetched => "cache_bytes_fetched",
            Counter::CacheBytesEvicted => "cache_bytes_evicted",
            Counter::BackwardPreemption => "backward_preemption",
            Counter::ForwardTask => "forward_task",
            Counter::BackwardTask => "backward_task",
            Counter::StallUs => "stall_us",
            Counter::BubbleUs => "bubble_us",
            Counter::Retry => "retry",
            Counter::Restart => "restart",
            Counter::ReplayedTask => "replayed_task",
            Counter::PoolJob => "pool_job",
            Counter::PoolChunk => "pool_chunk",
            Counter::PoolBusyUs => "pool_busy_us",
            Counter::DurablePersist => "durable_persist",
            Counter::DurableResume => "durable_resume",
        }
    }
}

/// Distribution-valued per-stage observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Sample {
    /// Stage queue depth observed at each dispatch decision.
    QueueDepth,
    /// Forward task latency in microseconds.
    ForwardLatencyUs,
    /// Backward task latency in microseconds.
    BackwardLatencyUs,
}

/// Number of [`Sample`] variants; sizes the per-stage histogram array.
pub const NUM_SAMPLES: usize = Sample::BackwardLatencyUs as usize + 1;

impl Sample {
    /// Every variant in declaration (= index) order; see
    /// [`Counter::ALL`].
    pub const ALL: [Sample; NUM_SAMPLES] = [
        Sample::QueueDepth,
        Sample::ForwardLatencyUs,
        Sample::BackwardLatencyUs,
    ];

    /// Stable snake_case name used in the Prometheus exposition.
    pub fn name(self) -> &'static str {
        match self {
            Sample::QueueDepth => "queue_depth",
            Sample::ForwardLatencyUs => "forward_latency_us",
            Sample::BackwardLatencyUs => "backward_latency_us",
        }
    }
}

/// Sink for per-stage runtime metrics.
///
/// `stage` is the pipeline-stage index (0-based). Implementations must
/// tolerate any stage index — recorders grow on demand — so emission
/// sites never need to pre-declare the stage count.
pub trait Recorder: Send {
    /// Adds `by` to `counter` on `stage`.
    fn incr(&mut self, stage: u32, counter: Counter, by: u64);
    /// Records one observation of `sample` on `stage`.
    fn sample(&mut self, stage: u32, sample: Sample, value: u64);
}

/// A recorder that drops everything; for benchmarks and tests that want
/// the emission sites compiled but no bookkeeping.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn incr(&mut self, _stage: u32, _counter: Counter, _by: u64) {}
    fn sample(&mut self, _stage: u32, _sample: Sample, _value: u64) {}
}

/// A min/max/sum/count summary with power-of-two buckets.
///
/// Buckets hold counts of values whose bit length is the bucket index
/// (value 0 lands in bucket 0), giving a coarse latency distribution
/// without allocation on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Log2 buckets: `buckets[i]` counts values with bit length `i`.
    pub buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket.min(63)] += 1;
    }

    /// Mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Estimated `p`-th percentile (`p` in 0..=100), or 0.0 when empty.
    ///
    /// Walks the log2 buckets to the one holding the rank, then
    /// interpolates linearly inside that bucket's value range — exact to
    /// within the bucket's width (a factor of two), which is the
    /// resolution the recording scheme keeps. The estimate is clamped to
    /// the recorded `[min, max]`, so p0/p100 are exact.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= rank {
                // Bucket i holds values of bit length i:
                // [2^(i-1), 2^i - 1]; bucket 0 holds only 0.
                let (lo, hi) = if i == 0 {
                    (0.0, 0.0)
                } else {
                    ((1u64 << (i - 1)) as f64, ((1u128 << i) - 1) as f64)
                };
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min_or_zero() as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// Folds `other`'s observations into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

/// Metrics for one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageMetrics {
    counters: [u64; NUM_COUNTERS],
    samples: [Histogram; NUM_SAMPLES],
}

impl Default for StageMetrics {
    fn default() -> Self {
        StageMetrics {
            counters: [0; NUM_COUNTERS],
            samples: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl StageMetrics {
    /// Current value of `counter`.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Histogram recorded for `sample`.
    pub fn histogram(&self, sample: Sample) -> &Histogram {
        &self.samples[sample as usize]
    }
}

/// The in-memory [`Recorder`]: a growable vector of per-stage metrics.
///
/// The threaded runtime gives each stage worker its own recorder and
/// [`merge`](MetricsRecorder::merge)s them after join, so recording
/// never contends on a lock.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MetricsRecorder {
    stages: Vec<StageMetrics>,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn stage_mut(&mut self, stage: u32) -> &mut StageMetrics {
        let idx = stage as usize;
        if idx >= self.stages.len() {
            self.stages.resize_with(idx + 1, StageMetrics::default);
        }
        &mut self.stages[idx]
    }

    /// Number of stages that have recorded anything.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Metrics for `stage`, if any were recorded.
    pub fn stage(&self, stage: u32) -> Option<&StageMetrics> {
        self.stages.get(stage as usize)
    }

    /// Folds `other`'s stages into `self` (per-worker recorder merge).
    pub fn merge(&mut self, other: &MetricsRecorder) {
        for (idx, theirs) in other.stages.iter().enumerate() {
            let mine = self.stage_mut(idx as u32);
            for c in 0..NUM_COUNTERS {
                mine.counters[c] += theirs.counters[c];
            }
            for s in 0..NUM_SAMPLES {
                mine.samples[s].merge(&theirs.samples[s]);
            }
        }
    }

    /// Snapshots the recorded metrics into a renderable [`ObsReport`].
    ///
    /// `wall_us` is the total run time (simulated or wall-clock) used to
    /// turn the stall/bubble counters into ratios; pass 0 when unknown
    /// and the ratios render as 0.
    pub fn report(&self, wall_us: u64) -> ObsReport {
        let stages = self
            .stages
            .iter()
            .enumerate()
            .map(|(idx, m)| {
                let hits = m.counter(Counter::CacheHit);
                let misses = m.counter(Counter::CacheMiss);
                let lookups = hits + misses;
                let fwd = m.histogram(Sample::ForwardLatencyUs);
                let bwd = m.histogram(Sample::BackwardLatencyUs);
                let depth = m.histogram(Sample::QueueDepth);
                StageObs {
                    stage: idx as u32,
                    forward_tasks: m.counter(Counter::ForwardTask),
                    backward_tasks: m.counter(Counter::BackwardTask),
                    backward_preemptions: m.counter(Counter::BackwardPreemption),
                    stall_us: m.counter(Counter::StallUs),
                    bubble_us: m.counter(Counter::BubbleUs),
                    stall_ratio: ratio(m.counter(Counter::StallUs), wall_us),
                    bubble_ratio: ratio(m.counter(Counter::BubbleUs), wall_us),
                    cache_hits: hits,
                    cache_misses: misses,
                    cache_evictions: m.counter(Counter::CacheEviction),
                    cache_prefetches: m.counter(Counter::CachePrefetch),
                    cache_hit_rate: ratio(hits, lookups),
                    retries: m.counter(Counter::Retry),
                    restarts: m.counter(Counter::Restart),
                    replayed_tasks: m.counter(Counter::ReplayedTask),
                    pool_jobs: m.counter(Counter::PoolJob),
                    pool_chunks: m.counter(Counter::PoolChunk),
                    pool_busy_us: m.counter(Counter::PoolBusyUs),
                    durable_persists: m.counter(Counter::DurablePersist),
                    durable_resumes: m.counter(Counter::DurableResume),
                    mean_queue_depth: depth.mean(),
                    max_queue_depth: depth.max,
                    queue_depth_p50: depth.percentile(50.0),
                    queue_depth_p95: depth.percentile(95.0),
                    queue_depth_p99: depth.percentile(99.0),
                    fwd_latency_mean_us: fwd.mean(),
                    fwd_latency_max_us: fwd.max,
                    fwd_latency_p50_us: fwd.percentile(50.0),
                    fwd_latency_p95_us: fwd.percentile(95.0),
                    fwd_latency_p99_us: fwd.percentile(99.0),
                    bwd_latency_mean_us: bwd.mean(),
                    bwd_latency_max_us: bwd.max,
                    bwd_latency_p50_us: bwd.percentile(50.0),
                    bwd_latency_p95_us: bwd.percentile(95.0),
                    bwd_latency_p99_us: bwd.percentile(99.0),
                }
            })
            .collect();
        ObsReport {
            wall_us,
            stages,
            ..ObsReport::default()
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Recorder for MetricsRecorder {
    fn incr(&mut self, stage: u32, counter: Counter, by: u64) {
        self.stage_mut(stage).counters[counter as usize] += by;
    }

    fn sample(&mut self, stage: u32, sample: Sample, value: u64) {
        self.stage_mut(stage).samples[sample as usize].record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_stage() {
        let mut r = MetricsRecorder::new();
        r.incr(0, Counter::CacheHit, 3);
        r.incr(2, Counter::CacheHit, 1);
        r.incr(0, Counter::CacheMiss, 2);
        assert_eq!(r.stage(0).unwrap().counter(Counter::CacheHit), 3);
        assert_eq!(r.stage(0).unwrap().counter(Counter::CacheMiss), 2);
        assert_eq!(r.stage(2).unwrap().counter(Counter::CacheHit), 1);
        assert_eq!(r.stage(1).unwrap().counter(Counter::CacheHit), 0);
        assert_eq!(r.num_stages(), 3);
    }

    #[test]
    fn histogram_tracks_distribution() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 4, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1039);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1024);
        assert!((h.mean() - 207.8).abs() < 1e-9);
        assert_eq!(h.buckets[1], 1); // value 1
        assert_eq!(h.buckets[11], 1); // value 1024
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let mut h = Histogram::default();
        for v in 1u64..=100 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1.0, "p0 is the min");
        assert_eq!(h.percentile(100.0), 100.0, "p100 is the max");
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} <= {p95} <= {p99}");
        // The true median (50.5) lives in bucket 6 = [32, 63]; the log2
        // interpolation must land in that bucket.
        assert!((32.0..=63.0).contains(&p50), "p50 = {p50}");
        assert!((64.0..=100.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn percentile_handles_edge_shapes() {
        assert_eq!(Histogram::default().percentile(50.0), 0.0, "empty");
        let mut zeros = Histogram::default();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.percentile(99.0), 0.0, "all-zero values");
        let mut single = Histogram::default();
        single.record(42);
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(single.percentile(p), 42.0, "single value at p{p}");
        }
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::default();
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0);
        assert_eq!(h.min_or_zero(), 0, "raw min is a MAX sentinel, not 0");
        assert_eq!(h.max, 0);
        assert_eq!(h.mean(), 0.0);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 0.0, "empty percentile p{p}");
        }
    }

    #[test]
    fn single_sample_histogram_pins_every_statistic() {
        // One observation occupies exactly one bucket: every percentile
        // (p99 included) must collapse to that value, and min == max.
        for v in [0u64, 1, 7, 42, 1 << 40] {
            let mut h = Histogram::default();
            h.record(v);
            assert_eq!(h.count, 1);
            assert_eq!(h.sum, v);
            assert_eq!(h.min, v);
            assert_eq!(h.max, v);
            assert_eq!(h.mean(), v as f64);
            for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
                assert_eq!(h.percentile(p), v as f64, "value {v} at p{p}");
            }
        }
    }

    #[test]
    fn merge_with_empty_preserves_min_sentinel() {
        // Empty histograms carry min == u64::MAX; merging one in either
        // direction must not corrupt min/max or resurrect phantom counts.
        let mut a = Histogram::default();
        a.record(42);
        a.merge(&Histogram::default());
        assert_eq!((a.count, a.min, a.max), (1, 42, 42));
        assert_eq!(a.percentile(99.0), 42.0);

        let mut b = Histogram::default();
        b.merge(&a);
        assert_eq!((b.count, b.min, b.max), (1, 42, 42));

        let mut e = Histogram::default();
        e.merge(&Histogram::default());
        assert_eq!(e.count, 0);
        assert_eq!(e.min, u64::MAX, "empty+empty keeps the sentinel");
        assert_eq!(e.min_or_zero(), 0);
        assert_eq!(e.percentile(99.0), 0.0);
    }

    #[test]
    fn merge_folds_counters_and_histograms() {
        let mut a = MetricsRecorder::new();
        a.incr(0, Counter::ForwardTask, 5);
        a.sample(0, Sample::QueueDepth, 3);
        let mut b = MetricsRecorder::new();
        b.incr(0, Counter::ForwardTask, 7);
        b.incr(1, Counter::BackwardTask, 2);
        b.sample(0, Sample::QueueDepth, 5);
        a.merge(&b);
        assert_eq!(a.stage(0).unwrap().counter(Counter::ForwardTask), 12);
        assert_eq!(a.stage(1).unwrap().counter(Counter::BackwardTask), 2);
        let h = a.stage(0).unwrap().histogram(Sample::QueueDepth);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 8);
    }

    #[test]
    fn report_computes_rates() {
        let mut r = MetricsRecorder::new();
        r.incr(0, Counter::CacheHit, 9);
        r.incr(0, Counter::CacheMiss, 1);
        r.incr(0, Counter::BubbleUs, 250_000);
        r.incr(0, Counter::StallUs, 500_000);
        let rep = r.report(1_000_000);
        let s = &rep.stages[0];
        assert!((s.cache_hit_rate - 0.9).abs() < 1e-12);
        assert!((s.bubble_ratio - 0.25).abs() < 1e-12);
        assert!((s.stall_ratio - 0.5).abs() < 1e-12);
    }
}
