//! The CSP invariant checker.
//!
//! [`CspChecker`] is an independent re-derivation of the causal
//! synchronous parallelism contract (paper Definition 1): a forward task
//! of subnet `y` at stage `K` may only run once every unfinished earlier
//! subnet `w < y` has *written* (finished its backward over) each layer
//! the task reads. With layer mirroring a shared layer can live at stage
//! `s_w` in `w`'s partition while `y` reads it at stage `K > s_w`; since
//! backward passes flow towards stage 0, the write completes only when
//! `w`'s backward reaches `min(K, s_w)` — the same refinement the
//! scheduler applies.
//!
//! The runtimes feed the checker their observed event stream
//! ([`register`](CspChecker::register) → [`on_admit_forward`]
//! (CspChecker::on_admit_forward) → [`on_backward_done`]
//! (CspChecker::on_backward_done) → [`retire_below`]
//! (CspChecker::retire_below)); any interleaving a sequential
//! exploration loop could not have produced surfaces as a [`Violation`]
//! naming the offending subnet pair and the shared layer. Because the
//! checker never consults the scheduler's own data structures, a
//! scheduler bug cannot mask itself.

use naspipe_supernet::{LayerRef, SubnetId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A detected breach of the CSP contract (or of the checker's event
/// protocol). The `Display` form names the subnets and layer involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A forward task was admitted while an earlier unfinished subnet
    /// still owned one of its layers.
    PrematureForward {
        /// The subnet whose forward was admitted too early.
        later: SubnetId,
        /// The earlier subnet whose write is still outstanding.
        earlier: SubnetId,
        /// The layer both subnets activate.
        layer: LayerRef,
        /// The stage at which the forward was admitted.
        stage: u32,
        /// The stage whose backward of `earlier` must finish first
        /// (`min(stage, s_w)` under layer mirroring).
        required_stage: u32,
    },
    /// A backward pass wrote a shared layer before an earlier subnet's
    /// write to the same layer — an interleaving sequential exploration
    /// could never produce.
    PrematureWrite {
        /// The subnet that wrote out of order.
        later: SubnetId,
        /// The earlier subnet whose write should have come first.
        earlier: SubnetId,
        /// The layer written out of order.
        layer: LayerRef,
        /// The stage at which the out-of-order write happened.
        stage: u32,
    },
    /// The same sequence ID was registered twice.
    DuplicateSubnet {
        /// The doubly-registered ID.
        id: SubnetId,
    },
    /// The same backward completion was reported twice.
    DuplicateBackward {
        /// The subnet reported twice.
        id: SubnetId,
        /// The stage reported twice.
        stage: u32,
    },
    /// An event referenced a subnet the checker has never seen.
    UnknownSubnet {
        /// The unregistered ID.
        id: SubnetId,
        /// Which event referenced it.
        event: &'static str,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::PrematureForward {
                later,
                earlier,
                layer,
                stage,
                required_stage,
            } => write!(
                f,
                "CSP violation: forward of {later} admitted at stage {stage} \
                 while earlier {earlier} has not written shared layer {layer} \
                 (its backward at stage {required_stage} is unfinished)"
            ),
            Violation::PrematureWrite {
                later,
                earlier,
                layer,
                stage,
            } => write!(
                f,
                "CSP violation: backward of {later} at stage {stage} wrote \
                 shared layer {layer} before earlier {earlier} wrote it"
            ),
            Violation::DuplicateSubnet { id } => {
                write!(f, "CSP protocol violation: {id} registered twice")
            }
            Violation::DuplicateBackward { id, stage } => write!(
                f,
                "CSP protocol violation: backward of {id} at stage {stage} \
                 reported done twice"
            ),
            Violation::UnknownSubnet { id, event } => write!(
                f,
                "CSP protocol violation: {event} event for unregistered {id}"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// One tracked (registered, not yet retired) subnet.
#[derive(Debug, Clone)]
struct TrackedSubnet {
    /// Activated layers and the stage owning each in this subnet's
    /// partition.
    layers: BTreeMap<LayerRef, u32>,
    /// Stages whose backward pass for this subnet has completed.
    bwd_done: BTreeSet<u32>,
}

impl TrackedSubnet {
    /// Whether this subnet's write of `layer` (the backward at the
    /// owning stage, capped at `reader_stage` for mirrored layers) has
    /// completed. Returns the required stage alongside.
    fn written(&self, layer: LayerRef, reader_stage: u32) -> (bool, u32) {
        let required = match self.layers.get(&layer) {
            Some(&owner) => owner.min(reader_stage),
            None => reader_stage,
        };
        (self.bwd_done.contains(&required), required)
    }
}

/// Validates a runtime's task event stream against the CSP contract.
///
/// All methods return `Err(Violation)` rather than panicking so callers
/// choose the failure mode: the simulator asserts in debug builds, the
/// threaded runtime propagates the violation as a training error, and
/// tests inspect the value.
#[derive(Debug, Clone, Default)]
pub struct CspChecker {
    active: BTreeMap<u64, TrackedSubnet>,
    admissions_checked: u64,
    writes_checked: u64,
}

impl CspChecker {
    /// Creates a checker with no tracked subnets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of forward admissions validated so far.
    pub fn admissions_checked(&self) -> u64 {
        self.admissions_checked
    }

    /// Number of backward completions validated so far.
    pub fn writes_checked(&self) -> u64 {
        self.writes_checked
    }

    /// Number of currently tracked (unretired) subnets.
    pub fn tracked(&self) -> usize {
        self.active.len()
    }

    /// Registers subnet `id` with its activated layers and, for each,
    /// the stage owning it in this subnet's partition.
    pub fn register<I>(&mut self, id: SubnetId, layers: I) -> Result<(), Violation>
    where
        I: IntoIterator<Item = (LayerRef, u32)>,
    {
        let entry = TrackedSubnet {
            layers: layers.into_iter().collect(),
            bwd_done: BTreeSet::new(),
        };
        if self.active.insert(id.0, entry).is_some() {
            return Err(Violation::DuplicateSubnet { id });
        }
        Ok(())
    }

    /// Validates the admission of subnet `id`'s forward task at `stage`:
    /// every earlier tracked subnet sharing one of the layers `id` reads
    /// at `stage` must already have written it.
    pub fn on_admit_forward(&mut self, id: SubnetId, stage: u32) -> Result<(), Violation> {
        self.admissions_checked += 1;
        let Some(entry) = self.active.get(&id.0) else {
            return Err(Violation::UnknownSubnet {
                id,
                event: "forward admission",
            });
        };
        let reads: Vec<LayerRef> = entry
            .layers
            .iter()
            .filter(|&(_, &owner)| owner == stage)
            .map(|(&l, _)| l)
            .collect();
        for (&wid, earlier) in self.active.range(..id.0) {
            for &layer in &reads {
                if !earlier.layers.contains_key(&layer) {
                    continue;
                }
                let (written, required_stage) = earlier.written(layer, stage);
                if !written {
                    return Err(Violation::PrematureForward {
                        later: id,
                        earlier: SubnetId(wid),
                        layer,
                        stage,
                        required_stage,
                    });
                }
            }
        }
        Ok(())
    }

    /// Records that subnet `id`'s backward at `stage` completed, and
    /// validates that its writes land after every earlier tracked
    /// subnet's write to the same layer (sequential-order cross-check).
    pub fn on_backward_done(&mut self, id: SubnetId, stage: u32) -> Result<(), Violation> {
        self.writes_checked += 1;
        let Some(entry) = self.active.get(&id.0) else {
            return Err(Violation::UnknownSubnet {
                id,
                event: "backward completion",
            });
        };
        let writes: Vec<LayerRef> = entry
            .layers
            .iter()
            .filter(|&(_, &owner)| owner == stage)
            .map(|(&l, _)| l)
            .collect();
        for (&wid, earlier) in self.active.range(..id.0) {
            for &layer in &writes {
                if !earlier.layers.contains_key(&layer) {
                    continue;
                }
                let (written, _) = earlier.written(layer, stage);
                if !written {
                    return Err(Violation::PrematureWrite {
                        later: id,
                        earlier: SubnetId(wid),
                        layer,
                        stage,
                    });
                }
            }
        }
        let entry = self.active.get_mut(&id.0).expect("checked above");
        if !entry.bwd_done.insert(stage) {
            return Err(Violation::DuplicateBackward { id, stage });
        }
        Ok(())
    }

    /// Drops tracking state for every subnet with sequence ID strictly
    /// below `bound` — they finished everywhere and can no longer
    /// constrain admissions. Mirrors `SubnetTable::retire_below`.
    pub fn retire_below(&mut self, bound: SubnetId) {
        self.active = self.active.split_off(&bound.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(block: u32) -> LayerRef {
        LayerRef::new(block, 0)
    }

    /// Two subnets sharing layer b0c0; both own it at stage 0 of a
    /// two-stage pipeline, and each also has a private layer at stage 1.
    fn checker_with_conflict() -> CspChecker {
        let mut c = CspChecker::new();
        c.register(SubnetId(0), [(layer(0), 0), (LayerRef::new(1, 1), 1)])
            .unwrap();
        c.register(SubnetId(1), [(layer(0), 0), (LayerRef::new(1, 2), 1)])
            .unwrap();
        c
    }

    #[test]
    fn sequential_order_passes() {
        let mut c = checker_with_conflict();
        c.on_admit_forward(SubnetId(0), 0).unwrap();
        c.on_admit_forward(SubnetId(0), 1).unwrap();
        c.on_backward_done(SubnetId(0), 1).unwrap();
        c.on_backward_done(SubnetId(0), 0).unwrap();
        c.on_admit_forward(SubnetId(1), 0).unwrap();
        c.on_admit_forward(SubnetId(1), 1).unwrap();
        c.on_backward_done(SubnetId(1), 1).unwrap();
        c.on_backward_done(SubnetId(1), 0).unwrap();
        assert_eq!(c.admissions_checked(), 4);
        assert_eq!(c.writes_checked(), 4);
    }

    #[test]
    fn non_conflicting_subnets_interleave_freely() {
        let mut c = CspChecker::new();
        c.register(SubnetId(0), [(LayerRef::new(0, 0), 0)]).unwrap();
        c.register(SubnetId(1), [(LayerRef::new(0, 5), 0)]).unwrap();
        // SN1 may run entirely before SN0: different choices, no shared
        // layer, no causal edge.
        c.on_admit_forward(SubnetId(1), 0).unwrap();
        c.on_backward_done(SubnetId(1), 0).unwrap();
        c.on_admit_forward(SubnetId(0), 0).unwrap();
        c.on_backward_done(SubnetId(0), 0).unwrap();
    }

    #[test]
    fn premature_forward_names_pair_and_layer() {
        let mut c = checker_with_conflict();
        c.on_admit_forward(SubnetId(0), 0).unwrap();
        let err = c.on_admit_forward(SubnetId(1), 0).unwrap_err();
        assert_eq!(
            err,
            Violation::PrematureForward {
                later: SubnetId(1),
                earlier: SubnetId(0),
                layer: layer(0),
                stage: 0,
                required_stage: 0,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("SN1"), "message names the later subnet: {msg}");
        assert!(
            msg.contains("SN0"),
            "message names the earlier subnet: {msg}"
        );
        assert!(
            msg.contains("b0c0"),
            "message names the shared layer: {msg}"
        );
    }

    #[test]
    fn mirrored_layer_requires_owner_stage_write() {
        // Shared layer b0c0 sits at stage 0 in SN0's partition but at
        // stage 1 in SN1's. SN0 finishing its backward at stage 1 is NOT
        // enough — the write happens at min(K=1, s_w=0) = 0.
        let mut c = CspChecker::new();
        c.register(SubnetId(0), [(layer(0), 0)]).unwrap();
        c.register(SubnetId(1), [(layer(0), 1)]).unwrap();
        c.on_admit_forward(SubnetId(0), 0).unwrap();
        c.on_backward_done(SubnetId(0), 1).unwrap();
        let err = c.on_admit_forward(SubnetId(1), 1).unwrap_err();
        assert_eq!(
            err,
            Violation::PrematureForward {
                later: SubnetId(1),
                earlier: SubnetId(0),
                layer: layer(0),
                stage: 1,
                required_stage: 0,
            }
        );
        c.on_backward_done(SubnetId(0), 0).unwrap();
        c.on_admit_forward(SubnetId(1), 1).unwrap();
    }

    #[test]
    fn premature_write_is_caught() {
        let mut c = checker_with_conflict();
        // SN1's backward at stage 0 (write of shared b0c0) before SN0
        // wrote it.
        let err = c.on_backward_done(SubnetId(1), 0).unwrap_err();
        assert_eq!(
            err,
            Violation::PrematureWrite {
                later: SubnetId(1),
                earlier: SubnetId(0),
                layer: layer(0),
                stage: 0,
            }
        );
    }

    #[test]
    fn retirement_unblocks_later_subnets() {
        let mut c = checker_with_conflict();
        c.retire_below(SubnetId(1));
        assert_eq!(c.tracked(), 1);
        c.on_admit_forward(SubnetId(1), 0).unwrap();
    }

    #[test]
    fn protocol_violations_are_reported() {
        let mut c = CspChecker::new();
        c.register(SubnetId(7), [(layer(0), 0)]).unwrap();
        assert_eq!(
            c.register(SubnetId(7), [(layer(0), 0)]).unwrap_err(),
            Violation::DuplicateSubnet { id: SubnetId(7) }
        );
        assert_eq!(
            c.on_admit_forward(SubnetId(9), 0).unwrap_err(),
            Violation::UnknownSubnet {
                id: SubnetId(9),
                event: "forward admission"
            }
        );
        c.on_backward_done(SubnetId(7), 0).unwrap();
        assert_eq!(
            c.on_backward_done(SubnetId(7), 0).unwrap_err(),
            Violation::DuplicateBackward {
                id: SubnetId(7),
                stage: 0
            }
        );
    }
}
