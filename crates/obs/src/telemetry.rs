//! Live telemetry: lock-light snapshots of the recorder counters while
//! a run is still in flight.
//!
//! Everything else in this crate is post-hoc — a [`MetricsRecorder`] is
//! private to its stage worker and only merged after join, so nothing
//! can be read until the run ends. The [`TelemetryHub`] closes that gap
//! with a second, concurrently readable copy of the same counters:
//!
//! * Stage workers tee every `incr`/`sample` into per-stage
//!   [`AtomicU64`] cells ([`TeeRecorder`]) with `Relaxed` ordering — an
//!   uncontended atomic add per event, no locks on the hot path.
//! * A sampler thread (or the DES loop, in simulated time) calls
//!   [`TelemetryHub::publish`] at a fixed interval, copying the cells
//!   into an immutable [`MetricsSnapshot`] and pushing it onto a
//!   fixed-capacity ring buffer. Only the sampler and scrapers touch
//!   the ring's mutex; workers never do.
//! * [`derive_rates`] turns consecutive snapshots into per-interval
//!   rates (tasks/s, cache hit-rate, stall fraction, pool utilisation)
//!   for the `/metrics` endpoint and the live progress line.
//!
//! Consistency model (DESIGN.md §3e): a snapshot is *per-counter*
//! atomic, not a consistent cut — two counters incremented by the same
//! event may straddle a snapshot. Each individual counter is still
//! monotonically non-decreasing across snapshots (same-location loads
//! respect coherence), which is exactly the contract Prometheus
//! counters need. The merged [`MetricsRecorder`] totals in the final
//! [`ObsReport`](crate::report::ObsReport) remain the source of truth;
//! on a fault-free run the final snapshot equals them, and
//! [`diff_against_report`] checks that equality.

use crate::metrics::{Counter, Histogram, MetricsRecorder, Recorder, Sample};
use crate::metrics::{NUM_COUNTERS, NUM_SAMPLES};
use crate::report::{SeriesPoint, SeriesStage};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring-buffer capacity (snapshots kept live).
pub const DEFAULT_RING_CAPACITY: usize = 512;

/// Atomic mirror of one stage's counters and histograms.
struct StageCells {
    counters: [AtomicU64; NUM_COUNTERS],
    hist_count: [AtomicU64; NUM_SAMPLES],
    hist_sum: [AtomicU64; NUM_SAMPLES],
    hist_min: [AtomicU64; NUM_SAMPLES],
    hist_max: [AtomicU64; NUM_SAMPLES],
    hist_buckets: [[AtomicU64; 64]; NUM_SAMPLES],
}

impl StageCells {
    fn new() -> Self {
        StageCells {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_count: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_sum: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_min: std::array::from_fn(|_| AtomicU64::new(u64::MAX)),
            hist_max: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_buckets: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

/// Copy of one [`Sample`] histogram at snapshot time. Same bucketing as
/// [`Histogram`]: `buckets[i]` counts values with bit length `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Observations recorded so far.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` sentinel when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Log2 buckets (see [`Histogram::buckets`]).
    pub buckets: [u64; 64],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl HistSnapshot {
    fn from_histogram(h: &Histogram) -> Self {
        HistSnapshot {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h.buckets,
        }
    }

    /// Mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
}

/// Copy of one stage's metrics at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSnapshot {
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; NUM_COUNTERS],
    /// Histogram copies, indexed by `Sample as usize`.
    pub hists: [HistSnapshot; NUM_SAMPLES],
}

impl Default for StageSnapshot {
    fn default() -> Self {
        StageSnapshot {
            counters: [0; NUM_COUNTERS],
            hists: std::array::from_fn(|_| HistSnapshot::default()),
        }
    }
}

impl StageSnapshot {
    /// Value of `counter` in this snapshot.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Histogram copy for `sample`.
    pub fn hist(&self, sample: Sample) -> &HistSnapshot {
        &self.hists[sample as usize]
    }
}

/// Global compute-pool counters at snapshot time (whole-run deltas of
/// the shared pool, attributed by the sampler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    /// Fan-out jobs submitted.
    pub jobs: u64,
    /// Chunks executed.
    pub chunks: u64,
    /// Microseconds of chunk execution summed over workers.
    pub busy_us: u64,
}

/// One point-in-time copy of every live counter.
///
/// `at_us` is run time: wall-clock microseconds since the run epoch in
/// the threaded runtime, simulated microseconds in the DES engine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Run time this snapshot was taken at, in microseconds.
    pub at_us: u64,
    /// Publish sequence number (0-based, never reset).
    pub seq: u64,
    /// Supervisor incarnation the run was in when sampled (0 before any
    /// restart).
    pub incarnation: u32,
    /// Per-stage copies, indexed by stage.
    pub stages: Vec<StageSnapshot>,
    /// Global compute-pool counters.
    pub pool: PoolSnapshot,
}

impl MetricsSnapshot {
    /// Sums `counter` across all stages.
    pub fn total(&self, counter: Counter) -> u64 {
        self.stages.iter().map(|s| s.counter(counter)).sum()
    }

    /// Forward + backward tasks completed across all stages.
    pub fn tasks_done(&self) -> u64 {
        self.total(Counter::ForwardTask) + self.total(Counter::BackwardTask)
    }

    /// Builds a snapshot straight from a (single-threaded) recorder —
    /// the DES engine path, where no atomics are needed because the
    /// event loop owns the recorder.
    pub fn from_recorder(rec: &MetricsRecorder, at_us: u64, incarnation: u32) -> Self {
        let stages = (0..rec.num_stages() as u32)
            .map(|k| {
                let mut out = StageSnapshot::default();
                if let Some(m) = rec.stage(k) {
                    for c in Counter::ALL {
                        out.counters[c as usize] = m.counter(c);
                    }
                    for s in Sample::ALL {
                        out.hists[s as usize] = HistSnapshot::from_histogram(m.histogram(s));
                    }
                }
                out
            })
            .collect();
        MetricsSnapshot {
            at_us,
            seq: 0,
            incarnation,
            stages,
            pool: PoolSnapshot::default(),
        }
    }
}

struct Ring {
    buf: VecDeque<MetricsSnapshot>,
    capacity: usize,
    published: u64,
    dropped: u64,
}

/// The live-telemetry rendezvous: atomic counter cells written by stage
/// workers, a snapshot ring written by the sampler, read by scrapers.
///
/// Stage capacity is fixed at construction; writes to out-of-range
/// stages are silently dropped (the run's merged recorder still has
/// them — live telemetry only mirrors the stages it was sized for).
pub struct TelemetryHub {
    stages: Vec<StageCells>,
    incarnation: AtomicU32,
    pool_jobs: AtomicU64,
    pool_chunks: AtomicU64,
    pool_busy_us: AtomicU64,
    watchdog_trips: [AtomicU64; crate::watchdog::NUM_WATCHDOG_KINDS],
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for TelemetryHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryHub")
            .field("stages", &self.stages.len())
            .field("published", &self.published())
            .finish()
    }
}

impl TelemetryHub {
    /// A hub for `num_stages` stages keeping up to `capacity` snapshots
    /// live (0 selects [`DEFAULT_RING_CAPACITY`]).
    pub fn new(num_stages: usize, capacity: usize) -> Self {
        let capacity = if capacity == 0 {
            DEFAULT_RING_CAPACITY
        } else {
            capacity
        };
        TelemetryHub {
            stages: (0..num_stages).map(|_| StageCells::new()).collect(),
            incarnation: AtomicU32::new(0),
            pool_jobs: AtomicU64::new(0),
            pool_chunks: AtomicU64::new(0),
            pool_busy_us: AtomicU64::new(0),
            watchdog_trips: std::array::from_fn(|_| AtomicU64::new(0)),
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                published: 0,
                dropped: 0,
            }),
        }
    }

    /// Stage capacity the hub was built with.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Adds `by` to `counter` on `stage` (hot path; relaxed atomic add).
    pub fn record(&self, stage: u32, counter: Counter, by: u64) {
        if let Some(cells) = self.stages.get(stage as usize) {
            cells.counters[counter as usize].fetch_add(by, Ordering::Relaxed);
        }
    }

    /// Records one histogram observation of `sample` on `stage`.
    pub fn observe(&self, stage: u32, sample: Sample, value: u64) {
        let Some(cells) = self.stages.get(stage as usize) else {
            return;
        };
        let s = sample as usize;
        cells.hist_count[s].fetch_add(1, Ordering::Relaxed);
        cells.hist_sum[s].fetch_add(value, Ordering::Relaxed);
        cells.hist_min[s].fetch_min(value, Ordering::Relaxed);
        cells.hist_max[s].fetch_max(value, Ordering::Relaxed);
        let bucket = (64 - value.leading_zeros()) as usize;
        cells.hist_buckets[s][bucket.min(63)].fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the supervisor incarnation exported with every snapshot.
    ///
    /// Exposed as a gauge, not a label: folding the incarnation into
    /// counter labels would reset each labelset on restart and break
    /// per-series monotonicity.
    pub fn set_incarnation(&self, incarnation: u32) {
        self.incarnation.store(incarnation, Ordering::Relaxed);
    }

    /// Current incarnation.
    pub fn incarnation(&self) -> u32 {
        self.incarnation.load(Ordering::Relaxed)
    }

    /// Counts one watchdog detector trip (feeds the
    /// `naspipe_watchdog_trips_total` Prometheus family).
    pub fn record_watchdog_trip(&self, kind: crate::watchdog::WatchdogVerdictKind) {
        self.watchdog_trips[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative trips per [`WatchdogVerdictKind`](crate::watchdog::WatchdogVerdictKind),
    /// index order.
    pub fn watchdog_trips(&self) -> [u64; crate::watchdog::NUM_WATCHDOG_KINDS] {
        std::array::from_fn(|i| self.watchdog_trips[i].load(Ordering::Relaxed))
    }

    /// Publishes the global compute-pool counters (run-delta values; the
    /// sampler owns attribution, so these are stores, not adds).
    pub fn set_pool(&self, jobs: u64, chunks: u64, busy_us: u64) {
        // max-store keeps each cell monotone even if two publishers race
        // (e.g. the periodic sampler and the final flush).
        self.pool_jobs.fetch_max(jobs, Ordering::Relaxed);
        self.pool_chunks.fetch_max(chunks, Ordering::Relaxed);
        self.pool_busy_us.fetch_max(busy_us, Ordering::Relaxed);
    }

    /// Copies every cell into an immutable snapshot without publishing
    /// it. `seq` is filled in by [`publish`](Self::publish).
    pub fn snapshot(&self, at_us: u64) -> MetricsSnapshot {
        let stages = self
            .stages
            .iter()
            .map(|cells| {
                let mut out = StageSnapshot::default();
                for (i, c) in cells.counters.iter().enumerate() {
                    out.counters[i] = c.load(Ordering::Relaxed);
                }
                for s in 0..NUM_SAMPLES {
                    out.hists[s] = HistSnapshot {
                        count: cells.hist_count[s].load(Ordering::Relaxed),
                        sum: cells.hist_sum[s].load(Ordering::Relaxed),
                        min: cells.hist_min[s].load(Ordering::Relaxed),
                        max: cells.hist_max[s].load(Ordering::Relaxed),
                        buckets: std::array::from_fn(|b| {
                            cells.hist_buckets[s][b].load(Ordering::Relaxed)
                        }),
                    };
                }
                out
            })
            .collect();
        MetricsSnapshot {
            at_us,
            seq: 0,
            incarnation: self.incarnation(),
            stages,
            pool: PoolSnapshot {
                jobs: self.pool_jobs.load(Ordering::Relaxed),
                chunks: self.pool_chunks.load(Ordering::Relaxed),
                busy_us: self.pool_busy_us.load(Ordering::Relaxed),
            },
        }
    }

    /// Takes a snapshot and pushes it onto the ring; returns the
    /// published copy (with its sequence number).
    pub fn publish(&self, at_us: u64) -> MetricsSnapshot {
        let snap = self.snapshot(at_us);
        self.publish_snapshot(snap)
    }

    /// Publishes an externally built snapshot (the DES engine builds its
    /// own via [`MetricsSnapshot::from_recorder`]).
    pub fn publish_snapshot(&self, mut snap: MetricsSnapshot) -> MetricsSnapshot {
        let mut ring = self.ring.lock().expect("telemetry ring poisoned");
        snap.seq = ring.published;
        ring.published += 1;
        if ring.buf.len() == ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(snap.clone());
        snap
    }

    /// Latest published snapshot, if any.
    pub fn latest(&self) -> Option<MetricsSnapshot> {
        let ring = self.ring.lock().expect("telemetry ring poisoned");
        ring.buf.back().cloned()
    }

    /// Latest two published snapshots `(previous, latest)` — the pair
    /// rate gauges are derived from.
    pub fn latest_pair(&self) -> (Option<MetricsSnapshot>, Option<MetricsSnapshot>) {
        let ring = self.ring.lock().expect("telemetry ring poisoned");
        let n = ring.buf.len();
        let prev = n.checked_sub(2).and_then(|i| ring.buf.get(i)).cloned();
        (prev, ring.buf.back().cloned())
    }

    /// Every snapshot still in the ring, oldest first.
    pub fn series(&self) -> Vec<MetricsSnapshot> {
        let ring = self.ring.lock().expect("telemetry ring poisoned");
        ring.buf.iter().cloned().collect()
    }

    /// Total snapshots ever published.
    pub fn published(&self) -> u64 {
        self.ring.lock().expect("telemetry ring poisoned").published
    }

    /// Snapshots evicted from the ring because it was full.
    pub fn samples_dropped(&self) -> u64 {
        self.ring.lock().expect("telemetry ring poisoned").dropped
    }

    /// Converts the ring into `(series, samples_dropped)` for embedding
    /// in the [`ObsReport`](crate::report::ObsReport) JSON (schema 4).
    pub fn series_points(&self) -> (Vec<SeriesPoint>, u64) {
        let series = self.series();
        let points = series
            .iter()
            .map(|snap| SeriesPoint {
                at_us: snap.at_us,
                incarnation: snap.incarnation,
                pool_busy_us: snap.pool.busy_us,
                stages: snap
                    .stages
                    .iter()
                    .map(|s| SeriesStage {
                        forward_tasks: s.counter(Counter::ForwardTask),
                        backward_tasks: s.counter(Counter::BackwardTask),
                        cache_hits: s.counter(Counter::CacheHit),
                        cache_misses: s.counter(Counter::CacheMiss),
                        stall_us: s.counter(Counter::StallUs),
                        bubble_us: s.counter(Counter::BubbleUs),
                        pool_busy_us: s.counter(Counter::PoolBusyUs),
                    })
                    .collect(),
            })
            .collect();
        (points, self.samples_dropped())
    }
}

/// How a run publishes live telemetry: where to, how often, and whether
/// to narrate progress on stderr.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// The hub snapshots are published to (shared with the `/metrics`
    /// server and any scraper).
    pub hub: Arc<TelemetryHub>,
    /// Sampling interval in run-time microseconds: wall-clock for the
    /// threaded runtime, simulated time for the DES engine. 0 selects
    /// [`DEFAULT_SAMPLE_INTERVAL_US`].
    pub sample_interval_us: u64,
    /// Emit a single-line live progress report on stderr at each
    /// sample.
    pub progress: bool,
}

/// Default sampling interval (200 ms of run time).
pub const DEFAULT_SAMPLE_INTERVAL_US: u64 = 200_000;

impl TelemetryOptions {
    /// Options publishing to `hub` at the default interval, quiet.
    pub fn new(hub: Arc<TelemetryHub>) -> Self {
        TelemetryOptions {
            hub,
            sample_interval_us: DEFAULT_SAMPLE_INTERVAL_US,
            progress: false,
        }
    }

    /// Sets the sampling interval in microseconds (builder-style; 0
    /// restores the default).
    pub fn with_interval_us(mut self, us: u64) -> Self {
        self.sample_interval_us = us;
        self
    }

    /// Enables the stderr progress line (builder-style).
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The effective interval (resolves 0 to the default).
    pub fn interval_us(&self) -> u64 {
        if self.sample_interval_us == 0 {
            DEFAULT_SAMPLE_INTERVAL_US
        } else {
            self.sample_interval_us
        }
    }
}

/// A [`Recorder`] that forwards to a private [`MetricsRecorder`] (the
/// source of truth, merged after join) and tees every event into the
/// shared [`TelemetryHub`] when one is attached.
#[derive(Debug, Default)]
pub struct TeeRecorder {
    inner: MetricsRecorder,
    hub: Option<Arc<TelemetryHub>>,
}

impl TeeRecorder {
    /// A recorder teeing into `hub` (or plain recording when `None`).
    pub fn new(hub: Option<Arc<TelemetryHub>>) -> Self {
        TeeRecorder {
            inner: MetricsRecorder::new(),
            hub,
        }
    }

    /// Extracts the private recorder for the post-join merge.
    pub fn into_inner(self) -> MetricsRecorder {
        self.inner
    }

    /// Read-only view of the private recorder.
    pub fn inner(&self) -> &MetricsRecorder {
        &self.inner
    }
}

impl Recorder for TeeRecorder {
    fn incr(&mut self, stage: u32, counter: Counter, by: u64) {
        self.inner.incr(stage, counter, by);
        if let Some(hub) = &self.hub {
            hub.record(stage, counter, by);
        }
    }

    fn sample(&mut self, stage: u32, sample: Sample, value: u64) {
        self.inner.sample(stage, sample, value);
        if let Some(hub) = &self.hub {
            hub.observe(stage, sample, value);
        }
    }
}

/// Per-stage rates over one inter-snapshot interval.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRate {
    /// Stage index.
    pub stage: u32,
    /// Forward tasks completed per second of run time.
    pub fwd_per_s: f64,
    /// Backward tasks completed per second of run time.
    pub bwd_per_s: f64,
    /// Cache hit rate over the interval's lookups (0 when none).
    pub cache_hit_rate: f64,
    /// Mean queue depth over the interval's dispatch decisions (0 when
    /// none).
    pub queue_depth_mean: f64,
    /// Fraction of the interval spent causally stalled.
    pub stall_frac: f64,
    /// Fraction of the interval spent in pipeline bubbles.
    pub bubble_frac: f64,
}

/// Whole-pipeline rates derived from two consecutive snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct RatePoint {
    /// Interval start (run time, µs).
    pub t0_us: u64,
    /// Interval end (run time, µs).
    pub t1_us: u64,
    /// Incarnation at the interval's end.
    pub incarnation: u32,
    /// Tasks (fwd+bwd, all stages) completed per second.
    pub tasks_per_s: f64,
    /// Compute-pool busy time per second of run time. Exceeds 1.0 when
    /// several pool workers run concurrently (worker-seconds/second).
    pub pool_busy_frac: f64,
    /// Per-stage interval rates.
    pub stages: Vec<StageRate>,
}

/// Derives an interval rate from each adjacent snapshot pair (oldest
/// first). Zero-length or backwards intervals are skipped.
pub fn derive_rates(series: &[MetricsSnapshot]) -> Vec<RatePoint> {
    series
        .windows(2)
        .filter_map(|w| rate_between(&w[0], &w[1]))
        .collect()
}

/// The rate over `[prev, cur]`, or `None` when the interval is empty.
pub fn rate_between(prev: &MetricsSnapshot, cur: &MetricsSnapshot) -> Option<RatePoint> {
    if cur.at_us <= prev.at_us {
        return None;
    }
    let dt_us = (cur.at_us - prev.at_us) as f64;
    let dt_s = dt_us / 1e6;
    let per_s = |c: Counter, k: usize| {
        let d = cur.stages[k]
            .counter(c)
            .saturating_sub(prev.stages.get(k).map(|s| s.counter(c)).unwrap_or_default());
        d as f64 / dt_s
    };
    let stages = (0..cur.stages.len())
        .map(|k| {
            let delta = |c: Counter| {
                cur.stages[k]
                    .counter(c)
                    .saturating_sub(prev.stages.get(k).map(|s| s.counter(c)).unwrap_or_default())
            };
            let hits = delta(Counter::CacheHit);
            let lookups = hits + delta(Counter::CacheMiss);
            let qd_cur = cur.stages[k].hist(Sample::QueueDepth);
            let qd_prev = prev.stages.get(k).map(|s| s.hist(Sample::QueueDepth));
            let d_count = qd_cur
                .count
                .saturating_sub(qd_prev.map(|h| h.count).unwrap_or(0));
            let d_sum = qd_cur
                .sum
                .saturating_sub(qd_prev.map(|h| h.sum).unwrap_or(0));
            StageRate {
                stage: k as u32,
                fwd_per_s: per_s(Counter::ForwardTask, k),
                bwd_per_s: per_s(Counter::BackwardTask, k),
                cache_hit_rate: if lookups == 0 {
                    0.0
                } else {
                    hits as f64 / lookups as f64
                },
                queue_depth_mean: if d_count == 0 {
                    0.0
                } else {
                    d_sum as f64 / d_count as f64
                },
                stall_frac: delta(Counter::StallUs) as f64 / dt_us,
                bubble_frac: delta(Counter::BubbleUs) as f64 / dt_us,
            }
        })
        .collect();
    Some(RatePoint {
        t0_us: prev.at_us,
        t1_us: cur.at_us,
        incarnation: cur.incarnation,
        tasks_per_s: (cur.tasks_done().saturating_sub(prev.tasks_done())) as f64 / dt_s,
        pool_busy_frac: cur.pool.busy_us.saturating_sub(prev.pool.busy_us) as f64 / dt_us,
        stages,
    })
}

/// One-line live progress summary for stderr, e.g.
/// `[ 1.2s] 384 tasks | 612.0 tasks/s | cache 93.1% | pool 3.2x | inc 0`.
pub fn progress_line(cur: &MetricsSnapshot, prev: Option<&MetricsSnapshot>) -> String {
    let rate = prev.and_then(|p| rate_between(p, cur));
    let (tps, pool) = rate
        .as_ref()
        .map(|r| (r.tasks_per_s, r.pool_busy_frac))
        .unwrap_or((0.0, 0.0));
    let hits = cur.total(Counter::CacheHit);
    let lookups = hits + cur.total(Counter::CacheMiss);
    let cache = if lookups == 0 {
        0.0
    } else {
        100.0 * hits as f64 / lookups as f64
    };
    format!(
        "[{:6.1}s] {} tasks | {:7.1} tasks/s | cache {:5.1}% | pool {:4.1}x | inc {}",
        cur.at_us as f64 / 1e6,
        cur.tasks_done(),
        tps,
        cache,
        pool,
        cur.incarnation,
    )
}

/// Compares a final snapshot against the merged per-stage totals of an
/// [`ObsReport`](crate::report::ObsReport); returns one message per
/// mismatching field (empty = totals agree).
///
/// Equality is only guaranteed on fault-free runs: a panicked worker's
/// private recorder dies with it while its hub writes survive, so after
/// a recovery the snapshot can legitimately exceed the report.
pub fn diff_against_report(
    snap: &MetricsSnapshot,
    report: &crate::report::ObsReport,
) -> Vec<String> {
    let mut diffs = Vec::new();
    if snap.stages.len() < report.stages.len() {
        diffs.push(format!(
            "snapshot has {} stages, report has {}",
            snap.stages.len(),
            report.stages.len()
        ));
        return diffs;
    }
    for obs in &report.stages {
        let s = &snap.stages[obs.stage as usize];
        let fields: [(&str, u64, u64); 14] = [
            (
                "forward_tasks",
                s.counter(Counter::ForwardTask),
                obs.forward_tasks,
            ),
            (
                "backward_tasks",
                s.counter(Counter::BackwardTask),
                obs.backward_tasks,
            ),
            (
                "backward_preemptions",
                s.counter(Counter::BackwardPreemption),
                obs.backward_preemptions,
            ),
            ("stall_us", s.counter(Counter::StallUs), obs.stall_us),
            ("bubble_us", s.counter(Counter::BubbleUs), obs.bubble_us),
            ("cache_hits", s.counter(Counter::CacheHit), obs.cache_hits),
            (
                "cache_misses",
                s.counter(Counter::CacheMiss),
                obs.cache_misses,
            ),
            (
                "cache_evictions",
                s.counter(Counter::CacheEviction),
                obs.cache_evictions,
            ),
            (
                "cache_prefetches",
                s.counter(Counter::CachePrefetch),
                obs.cache_prefetches,
            ),
            ("retries", s.counter(Counter::Retry), obs.retries),
            (
                "replayed_tasks",
                s.counter(Counter::ReplayedTask),
                obs.replayed_tasks,
            ),
            ("pool_jobs", s.counter(Counter::PoolJob), obs.pool_jobs),
            (
                "pool_chunks",
                s.counter(Counter::PoolChunk),
                obs.pool_chunks,
            ),
            (
                "pool_busy_us",
                s.counter(Counter::PoolBusyUs),
                obs.pool_busy_us,
            ),
        ];
        for (name, got, want) in fields {
            if got != want {
                diffs.push(format!(
                    "stage {} {name}: snapshot {got} != report {want}",
                    obs.stage
                ));
            }
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_round_trip() {
        let hub = TelemetryHub::new(2, 8);
        hub.record(0, Counter::ForwardTask, 3);
        hub.record(1, Counter::CacheHit, 2);
        hub.observe(0, Sample::QueueDepth, 5);
        hub.observe(0, Sample::QueueDepth, 7);
        hub.set_pool(10, 40, 900);
        let snap = hub.snapshot(1000);
        assert_eq!(snap.stages[0].counter(Counter::ForwardTask), 3);
        assert_eq!(snap.stages[1].counter(Counter::CacheHit), 2);
        let qd = snap.stages[0].hist(Sample::QueueDepth);
        assert_eq!((qd.count, qd.sum, qd.min, qd.max), (2, 12, 5, 7));
        assert_eq!(qd.mean(), 6.0);
        assert_eq!(
            snap.pool,
            PoolSnapshot {
                jobs: 10,
                chunks: 40,
                busy_us: 900
            }
        );
        // Out-of-range stages are dropped, not grown.
        hub.record(9, Counter::ForwardTask, 1);
        hub.observe(9, Sample::QueueDepth, 1);
        assert_eq!(hub.snapshot(2000).stages.len(), 2);
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let hub = TelemetryHub::new(1, 3);
        for t in 0..5u64 {
            hub.publish(t * 100);
        }
        assert_eq!(hub.published(), 5);
        assert_eq!(hub.samples_dropped(), 2);
        let series = hub.series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].at_us, 200, "oldest snapshots evicted first");
        assert_eq!(series[2].seq, 4);
        assert_eq!(hub.latest().unwrap().at_us, 400);
        let (prev, latest) = hub.latest_pair();
        assert_eq!(prev.unwrap().at_us, 300);
        assert_eq!(latest.unwrap().at_us, 400);
    }

    #[test]
    fn tee_recorder_feeds_both_sinks() {
        let hub = Arc::new(TelemetryHub::new(2, 8));
        let mut tee = TeeRecorder::new(Some(hub.clone()));
        tee.incr(0, Counter::ForwardTask, 4);
        tee.sample(1, Sample::BackwardLatencyUs, 123);
        assert_eq!(
            tee.inner().stage(0).unwrap().counter(Counter::ForwardTask),
            4
        );
        let snap = hub.snapshot(0);
        assert_eq!(snap.stages[0].counter(Counter::ForwardTask), 4);
        assert_eq!(snap.stages[1].hist(Sample::BackwardLatencyUs).count, 1);
        assert_eq!(snap.stages[1].hist(Sample::BackwardLatencyUs).sum, 123);
    }

    #[test]
    fn rates_derive_from_snapshot_deltas() {
        let hub = TelemetryHub::new(1, 8);
        hub.record(0, Counter::ForwardTask, 10);
        hub.record(0, Counter::CacheHit, 8);
        hub.record(0, Counter::CacheMiss, 2);
        hub.publish(1_000_000);
        hub.record(0, Counter::ForwardTask, 5);
        hub.record(0, Counter::CacheHit, 1);
        hub.record(0, Counter::CacheMiss, 3);
        hub.record(0, Counter::StallUs, 500_000);
        hub.set_pool(1, 2, 2_000_000);
        hub.publish(2_000_000);
        let rates = derive_rates(&hub.series());
        assert_eq!(rates.len(), 1);
        let r = &rates[0];
        assert_eq!((r.t0_us, r.t1_us), (1_000_000, 2_000_000));
        assert_eq!(r.tasks_per_s, 5.0, "only the interval delta counts");
        assert_eq!(r.pool_busy_frac, 2.0, "worker-seconds per second");
        let s = &r.stages[0];
        assert_eq!(s.fwd_per_s, 5.0);
        assert_eq!(s.cache_hit_rate, 0.25, "interval hit rate, not cumulative");
        assert_eq!(s.stall_frac, 0.5);
    }

    #[test]
    fn zero_length_intervals_are_skipped() {
        let a = MetricsSnapshot {
            at_us: 100,
            ..Default::default()
        };
        let b = MetricsSnapshot {
            at_us: 100,
            ..Default::default()
        };
        assert!(rate_between(&a, &b).is_none());
        assert!(derive_rates(&[a, b]).is_empty());
    }

    #[test]
    fn from_recorder_matches_tee_mirror() {
        // The DES path (from_recorder) and the threaded path (tee into
        // atomic cells) must produce identical snapshots for the same
        // event stream.
        let hub = TelemetryHub::new(2, 8);
        let mut rec = MetricsRecorder::new();
        for (stage, c, by) in [
            (0u32, Counter::ForwardTask, 3u64),
            (1, Counter::CacheMiss, 2),
        ] {
            rec.incr(stage, c, by);
            hub.record(stage, c, by);
        }
        for (stage, s, v) in [
            (0u32, Sample::QueueDepth, 4u64),
            (0, Sample::ForwardLatencyUs, 250),
        ] {
            rec.sample(stage, s, v);
            hub.observe(stage, s, v);
        }
        let from_rec = MetricsSnapshot::from_recorder(&rec, 500, 0);
        let from_hub = hub.snapshot(500);
        assert_eq!(from_rec.stages, from_hub.stages);
    }

    #[test]
    fn progress_line_is_single_line() {
        let hub = TelemetryHub::new(1, 8);
        hub.record(0, Counter::ForwardTask, 100);
        let a = hub.publish(1_000_000);
        hub.record(0, Counter::ForwardTask, 50);
        let b = hub.publish(2_000_000);
        let line = progress_line(&b, Some(&a));
        assert!(!line.contains('\n'));
        assert!(line.contains("tasks/s"), "{line}");
        assert!(line.contains("inc 0"), "{line}");
    }
}
