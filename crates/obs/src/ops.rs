//! The ops plane: a multi-route HTTP surface over one run's live state.
//!
//! [`OpsServer`] grows the single-endpoint metrics server into a small
//! operational API, still hand-rolled on `std::net` with zero
//! dependencies and the same zero-effect-on-results guarantee:
//!
//! | route      | payload                                                |
//! |------------|--------------------------------------------------------|
//! | `/metrics` | Prometheus 0.0.4 text (the existing exposition, plus   |
//! |            | journal/flight ring-drop counter families)             |
//! | `/healthz` | liveness: `200 ok` whenever the server thread runs     |
//! | `/readyz`  | readiness: `200` while the pipeline is admitting work, |
//! |            | `503` before start, after end, or once a watchdog      |
//! |            | stage-stall verdict latches                            |
//! | `/status`  | versioned JSON: run metadata, per-stage CSP            |
//! |            | watermarks, checkpoint cuts, recovery/durable          |
//! |            | counters, watchdog trips, progress %                   |
//! | `/flight`  | on-demand flight-recorder dump (without ending the run)|
//! | `/events`  | the structured journal, streamed as chunked JSONL      |
//!
//! [`OpsState`] is the shared snapshot the routes read: the runtimes
//! update it from the supervisor (phase, watermarks, checkpoint cuts)
//! while the [`TelemetryHub`] and [`Journal`] carry the high-rate and
//! event-structured sides. Everything here is read-only with respect to
//! training: scraping any route concurrently never changes a result bit
//! (proven by `repro ops` and the `tests/ops_plane.rs` bitwise gate).

use crate::flight::FlightRecorder;
use crate::journal::{escape_json, Journal, JsonValue};
use crate::report::RunMeta;
use crate::telemetry::{rate_between, MetricsSnapshot, StageRate, TelemetryHub};
use crate::watchdog::WatchdogVerdictKind;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Version stamped into the `/status` document as `"v"`.
pub const STATUS_SCHEMA_VERSION: u64 = 1;

/// Sentinel for "no checkpoint cut completed yet".
const NO_CUT: u64 = u64::MAX;

/// Run lifecycle phase, as exposed by `/status` and `/readyz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// Created but the pipeline has not started admitting work.
    Starting,
    /// The pipeline is admitting and retiring tasks.
    Running,
    /// The run finished cleanly.
    Done,
    /// The run ended in an error.
    Failed,
}

impl RunPhase {
    /// Stable lowercase name used in `/status`.
    pub fn name(self) -> &'static str {
        match self {
            RunPhase::Starting => "starting",
            RunPhase::Running => "running",
            RunPhase::Done => "done",
            RunPhase::Failed => "failed",
        }
    }

    fn from_u8(v: u8) -> RunPhase {
        match v {
            1 => RunPhase::Running,
            2 => RunPhase::Done,
            3 => RunPhase::Failed,
            _ => RunPhase::Starting,
        }
    }
}

/// The shared state behind every ops-plane route. The runtimes hold an
/// `Arc<OpsState>` (plumbed through `DiagnosticsOptions`) and update the
/// cheap atomics at lifecycle points; the server threads only read.
pub struct OpsState {
    meta: RunMeta,
    hub: Arc<TelemetryHub>,
    journal: Arc<Journal>,
    flight: Mutex<Option<Arc<FlightRecorder>>>,
    phase: AtomicU8,
    total_subnets: AtomicU64,
    resume_watermark: AtomicU64,
    last_cut: AtomicU64,
    /// Per-stage CSP watermarks at checkpoint-cut granularity: stage `k`
    /// has finished every subnet below `stage_watermarks[k]`.
    stage_watermarks: Vec<AtomicU64>,
}

impl std::fmt::Debug for OpsState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsState")
            .field("engine", &self.meta.engine)
            .field("stages", &self.meta.stages)
            .field("phase", &self.phase())
            .finish()
    }
}

impl OpsState {
    /// State for one run: `meta` names it, `hub` carries the live
    /// counters, `journal` the structured events.
    pub fn new(meta: RunMeta, hub: Arc<TelemetryHub>, journal: Arc<Journal>) -> Self {
        let stages = meta.stages as usize;
        OpsState {
            meta,
            hub,
            journal,
            flight: Mutex::new(None),
            phase: AtomicU8::new(0),
            total_subnets: AtomicU64::new(0),
            resume_watermark: AtomicU64::new(0),
            last_cut: AtomicU64::new(NO_CUT),
            stage_watermarks: (0..stages).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The run metadata the state was built with.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// The telemetry hub the routes read.
    pub fn hub(&self) -> Arc<TelemetryHub> {
        Arc::clone(&self.hub)
    }

    /// The structured journal `/events` streams.
    pub fn journal(&self) -> Arc<Journal> {
        Arc::clone(&self.journal)
    }

    /// Attaches the run's flight recorder so `/flight` can dump it.
    pub fn attach_flight(&self, flight: Arc<FlightRecorder>) {
        *self.flight.lock().expect("ops flight lock poisoned") = Some(flight);
    }

    /// The attached flight recorder, when one is.
    pub fn flight(&self) -> Option<Arc<FlightRecorder>> {
        self.flight
            .lock()
            .expect("ops flight lock poisoned")
            .clone()
    }

    /// Moves the run to `phase`.
    pub fn set_phase(&self, phase: RunPhase) {
        self.phase.store(phase as u8, Ordering::Release);
    }

    /// The current phase.
    pub fn phase(&self) -> RunPhase {
        RunPhase::from_u8(self.phase.load(Ordering::Acquire))
    }

    /// Records how many subnets the run trains in total.
    pub fn set_total_subnets(&self, total: u64) {
        self.total_subnets.store(total, Ordering::Relaxed);
    }

    /// Records the watermark the current incarnation resumed from (also
    /// floors every per-stage watermark).
    pub fn set_resume_watermark(&self, watermark: u64) {
        self.resume_watermark
            .fetch_max(watermark, Ordering::Relaxed);
        for w in &self.stage_watermarks {
            w.fetch_max(watermark, Ordering::Relaxed);
        }
    }

    /// Advances one stage's CSP watermark (called when the stage
    /// contributes `watermark` to a checkpoint cut).
    pub fn note_stage_watermark(&self, stage: u32, watermark: u64) {
        if let Some(w) = self.stage_watermarks.get(stage as usize) {
            w.fetch_max(watermark, Ordering::Relaxed);
        }
    }

    /// Records a completed (all-stage) checkpoint cut.
    pub fn record_cut(&self, watermark: u64) {
        let _ = self
            .last_cut
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(if cur == NO_CUT {
                    watermark
                } else {
                    cur.max(watermark)
                })
            });
    }

    /// The newest completed cut, when any completed.
    pub fn last_cut(&self) -> Option<u64> {
        match self.last_cut.load(Ordering::Relaxed) {
            NO_CUT => None,
            w => Some(w),
        }
    }

    /// Readiness: is the pipeline admitting work? `Err` carries the
    /// reason rendered into the 503 body.
    pub fn ready(&self) -> Result<(), String> {
        match self.phase() {
            RunPhase::Starting => Err("starting: pipeline not admitting work yet".into()),
            RunPhase::Done => Err("done: run completed".into()),
            RunPhase::Failed => Err("failed: run ended in error".into()),
            RunPhase::Running => {
                let trips = self.hub.watchdog_trips();
                let stalls = trips[WatchdogVerdictKind::StageStall as usize];
                if stalls > 0 {
                    Err(format!("watchdog: {stalls} stage-stall verdict(s) latched"))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Renders the `/status` document (schema v1).
    pub fn render_status(&self) -> String {
        let (prev, cur) = self.hub.latest_pair();
        let rates = match (&prev, &cur) {
            (Some(p), Some(c)) => rate_between(p, c),
            _ => None,
        };
        let total = self.total_subnets.load(Ordering::Relaxed);
        let stages = self.meta.stages as u64;
        let tasks_done = cur.as_ref().map_or(0, MetricsSnapshot::tasks_done);
        // Forward + backward once per (subnet, stage): the denominator of
        // the progress estimate. Replayed tasks after a recovery can
        // overshoot it, so the percentage is clamped.
        let tasks_expected = total * stages * 2;
        let progress_pct = if tasks_expected > 0 {
            (tasks_done as f64 * 100.0 / tasks_expected as f64).min(100.0)
        } else {
            0.0
        };
        let ready = self.ready();
        let trips = self.hub.watchdog_trips();
        let total_of = |c| cur.as_ref().map_or(0, |s| s.total(c));
        use crate::metrics::Counter;

        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"v\":{STATUS_SCHEMA_VERSION},\"engine\":\"{}\",\"stages\":{},",
            escape_json(&self.meta.engine),
            self.meta.stages
        );
        match self.meta.seed {
            Some(seed) => {
                let _ = write!(out, "\"seed\":{seed},");
            }
            None => out.push_str("\"seed\":null,"),
        }
        let _ = write!(
            out,
            "\"phase\":\"{}\",\"ready\":{},\"ready_reason\":\"{}\",",
            self.phase().name(),
            ready.is_ok(),
            escape_json(ready.as_ref().err().map_or("ok", String::as_str)),
        );
        let _ = write!(
            out,
            "\"incarnation\":{},\"at_us\":{},\"total_subnets\":{total},\
             \"tasks_done\":{tasks_done},\"tasks_expected\":{tasks_expected},\
             \"progress_pct\":{progress_pct:.2},",
            self.hub.incarnation(),
            cur.as_ref().map_or(0, |s| s.at_us),
        );
        let _ = write!(
            out,
            "\"resume_watermark\":{},",
            self.resume_watermark.load(Ordering::Relaxed)
        );
        match self.last_cut() {
            Some(w) => {
                let _ = write!(out, "\"last_cut\":{w},");
            }
            None => out.push_str("\"last_cut\":null,"),
        }
        let _ = write!(
            out,
            "\"recovery\":{{\"retries\":{},\"restarts\":{},\"replayed\":{}}},",
            total_of(Counter::Retry),
            total_of(Counter::Restart),
            total_of(Counter::ReplayedTask),
        );
        let _ = write!(
            out,
            "\"durable\":{{\"persists\":{},\"resumes\":{}}},",
            total_of(Counter::DurablePersist),
            total_of(Counter::DurableResume),
        );
        out.push_str("\"watchdog\":{");
        for (i, kind) in WatchdogVerdictKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", kind.name(), trips[i]);
        }
        out.push_str("},");
        let _ = write!(
            out,
            "\"drops\":{{\"telemetry\":{},\"journal\":{},\"flight\":{}}},",
            self.hub.samples_dropped(),
            self.journal.dropped(),
            self.flight().map_or(0, |f| f.dropped()),
        );
        let _ = write!(
            out,
            "\"journal\":{{\"emitted\":{},\"retained\":{}}},",
            self.journal.emitted(),
            self.journal.len(),
        );
        out.push_str("\"stages_detail\":[");
        for k in 0..self.meta.stages as usize {
            if k > 0 {
                out.push(',');
            }
            let watermark = self
                .stage_watermarks
                .get(k)
                .map_or(0, |w| w.load(Ordering::Relaxed));
            let (fwd, bwd) = cur
                .as_ref()
                .and_then(|s| s.stages.get(k))
                .map_or((0, 0), |s| {
                    (
                        s.counter(Counter::ForwardTask),
                        s.counter(Counter::BackwardTask),
                    )
                });
            let rate = rates
                .as_ref()
                .and_then(|r| r.stages.iter().find(|s| s.stage == k as u32));
            let zero = StageRate {
                stage: k as u32,
                fwd_per_s: 0.0,
                bwd_per_s: 0.0,
                cache_hit_rate: 0.0,
                queue_depth_mean: 0.0,
                stall_frac: 0.0,
                bubble_frac: 0.0,
            };
            let r = rate.unwrap_or(&zero);
            let _ = write!(
                out,
                "{{\"stage\":{k},\"watermark\":{watermark},\"forward\":{fwd},\
                 \"backward\":{bwd},\"tasks_per_s\":{:.3},\"queue_depth\":{:.3},\
                 \"stall_frac\":{:.4},\"bubble_frac\":{:.4},\"cache_hit\":{:.4}}}",
                r.fwd_per_s + r.bwd_per_s,
                r.queue_depth_mean,
                r.stall_frac,
                r.bubble_frac,
                r.cache_hit_rate,
            );
        }
        out.push_str("]}");
        out
    }
}

/// Validates a parsed `/status` document against schema v1. Returns the
/// list of problems (empty = valid). This is the scanner-backed check
/// the CI ops job and `repro ops` run against a live server.
pub fn validate_status(doc: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    let mut need = |key: &str, ok: bool| {
        if !ok {
            problems.push(format!("missing or mistyped {key:?}"));
        }
    };
    need(
        "v",
        doc.get("v").and_then(JsonValue::as_u64) == Some(STATUS_SCHEMA_VERSION),
    );
    need(
        "engine",
        doc.get("engine").and_then(JsonValue::as_str).is_some(),
    );
    let stages = doc.get("stages").and_then(JsonValue::as_u64);
    need("stages", stages.is_some());
    let phase_ok = matches!(
        doc.get("phase").and_then(JsonValue::as_str),
        Some("starting" | "running" | "done" | "failed")
    );
    need("phase", phase_ok);
    need(
        "ready",
        doc.get("ready").and_then(JsonValue::as_bool).is_some(),
    );
    need(
        "ready_reason",
        doc.get("ready_reason")
            .and_then(JsonValue::as_str)
            .is_some(),
    );
    for key in [
        "incarnation",
        "at_us",
        "total_subnets",
        "tasks_done",
        "tasks_expected",
        "resume_watermark",
    ] {
        need(key, doc.get(key).and_then(JsonValue::as_u64).is_some());
    }
    need(
        "progress_pct",
        doc.get("progress_pct")
            .and_then(JsonValue::as_f64)
            .is_some_and(|p| (0.0..=100.0).contains(&p)),
    );
    need(
        "last_cut",
        matches!(
            doc.get("last_cut"),
            Some(JsonValue::Null) | Some(JsonValue::Num(_))
        ),
    );
    for (obj, keys) in [
        ("recovery", &["retries", "restarts", "replayed"][..]),
        ("durable", &["persists", "resumes"][..]),
        ("drops", &["telemetry", "journal", "flight"][..]),
        ("journal", &["emitted", "retained"][..]),
    ] {
        for key in keys {
            need(
                &format!("{obj}.{key}"),
                doc.get(obj)
                    .and_then(|o| o.get(key))
                    .and_then(JsonValue::as_u64)
                    .is_some(),
            );
        }
    }
    for kind in WatchdogVerdictKind::ALL {
        need(
            &format!("watchdog.{}", kind.name()),
            doc.get("watchdog")
                .and_then(|o| o.get(kind.name()))
                .and_then(JsonValue::as_u64)
                .is_some(),
        );
    }
    match doc.get("stages_detail").and_then(JsonValue::as_arr) {
        None => problems.push("missing or mistyped \"stages_detail\"".into()),
        Some(rows) => {
            if let Some(n) = stages {
                if rows.len() as u64 != n {
                    problems.push(format!(
                        "stages_detail has {} rows for {n} stages",
                        rows.len()
                    ));
                }
            }
            for (i, row) in rows.iter().enumerate() {
                for key in ["stage", "watermark", "forward", "backward"] {
                    if row.get(key).and_then(JsonValue::as_u64).is_none() {
                        problems.push(format!("stages_detail[{i}] missing {key:?}"));
                    }
                }
                for key in ["tasks_per_s", "queue_depth", "stall_frac", "bubble_frac"] {
                    if row.get(key).and_then(JsonValue::as_f64).is_none() {
                        problems.push(format!("stages_detail[{i}] missing {key:?}"));
                    }
                }
            }
        }
    }
    problems
}

/// Renders the `naspipe top` frame from a parsed `/status` document and
/// the raw `/metrics` text. Pure, so the live view is unit-testable.
pub fn render_top(doc: &JsonValue, metrics: &str) -> Result<String, String> {
    let problems = validate_status(doc);
    if !problems.is_empty() {
        return Err(format!("invalid /status document: {}", problems.join("; ")));
    }
    let s = |k: &str| doc.get(k).and_then(JsonValue::as_str).unwrap_or("?");
    let n = |k: &str| doc.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    let mut out = String::with_capacity(512);
    let seed = doc
        .get("seed")
        .and_then(JsonValue::as_u64)
        .map_or("-".to_string(), |v| v.to_string());
    let ready = if doc.get("ready").and_then(JsonValue::as_bool) == Some(true) {
        "ready".to_string()
    } else {
        format!("not ready: {}", s("ready_reason"))
    };
    let _ = writeln!(
        out,
        "naspipe top — {} engine, {} stage(s), seed {seed} — phase {} ({ready})",
        s("engine"),
        n("stages"),
        s("phase"),
    );
    let progress = doc
        .get("progress_pct")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    let last_cut = match doc.get("last_cut") {
        Some(JsonValue::Num(w)) => format!("{w:.0}"),
        _ => "-".to_string(),
    };
    let _ = writeln!(
        out,
        "tasks {}/{} ({progress:.1}%) — incarnation {} — last cut {last_cut} — uptime {:.1}s",
        n("tasks_done"),
        n("tasks_expected"),
        n("incarnation"),
        n("at_us") as f64 / 1e6,
    );
    let _ = writeln!(
        out,
        "{:>5} {:>10} {:>7} {:>7} {:>9} {:>7} {:>7} {:>8} {:>7}",
        "stage", "watermark", "fwd", "bwd", "tasks/s", "queue", "stall%", "bubble%", "cache%"
    );
    for row in doc
        .get("stages_detail")
        .and_then(JsonValue::as_arr)
        .unwrap_or(&[])
    {
        let rn = |k: &str| row.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
        let rf = |k: &str| row.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>7} {:>7} {:>9.2} {:>7.2} {:>7.1} {:>8.1} {:>7.1}",
            rn("stage"),
            rn("watermark"),
            rn("forward"),
            rn("backward"),
            rf("tasks_per_s"),
            rf("queue_depth"),
            rf("stall_frac") * 100.0,
            rf("bubble_frac") * 100.0,
            row.get("cache_hit")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0)
                * 100.0,
        );
    }
    let pool = gauge_value(metrics, "naspipe_pool_utilization");
    let wd = |kind: WatchdogVerdictKind| {
        doc.get("watchdog")
            .and_then(|o| o.get(kind.name()))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
    };
    let trips: u64 = WatchdogVerdictKind::ALL.iter().map(|&k| wd(k)).sum();
    let journal_line = format!(
        "journal {} event(s), {} retained, {} dropped",
        doc.get("journal")
            .and_then(|o| o.get("emitted"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        doc.get("journal")
            .and_then(|o| o.get("retained"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
        doc.get("drops")
            .and_then(|o| o.get("journal"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0),
    );
    let _ = writeln!(
        out,
        "pool util {} — watchdog trips {trips} — {journal_line}",
        pool.map_or("-".to_string(), |p| format!("{:.0}%", p * 100.0)),
    );
    Ok(out)
}

/// First sample value of an unlabelled gauge/counter family in a
/// Prometheus text exposition.
fn gauge_value(metrics: &str, family: &str) -> Option<f64> {
    metrics.lines().find_map(|line| {
        line.strip_prefix(family)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse::<f64>().ok())
    })
}

/// The multi-route HTTP server. Binding spawns one listener thread
/// (`naspipe-ops`); each route renders from the shared [`OpsState`].
/// Dropping the server (or calling [`shutdown`](Self::shutdown)) stops
/// and joins the thread.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl OpsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving. The resolved address is printed once to stderr so
    /// callers — and CI jobs — never race on fixed ports.
    pub fn bind(addr: &str, state: Arc<OpsState>) -> std::io::Result<OpsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        eprintln!(
            "naspipe: ops plane on http://{local} (routes: /metrics /healthz /readyz /status /flight /events)"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("naspipe-ops".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        match listener.accept() {
                            Ok((stream, _)) => serve_connection(stream, &state),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn ops server")
        };
        Ok(OpsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The resolved bound address (the ephemeral port when bound to 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener thread and waits for it.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, state: &Arc<OpsState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head; cap the total read so a
    // hostile client cannot balloon memory.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let Some(request_line) = head.lines().next() else {
        return;
    };
    let Some(target) = request_line.split_whitespace().nth(1) else {
        return;
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => {
            let body = crate::expo::render_exposition_ops(
                &state.hub(),
                state.meta(),
                Some(state.journal().dropped()),
                state.flight().map(|f| f.dropped()),
            );
            respond(&mut stream, "200 OK", crate::expo::CONTENT_TYPE, &body);
        }
        "/healthz" => respond(&mut stream, "200 OK", "text/plain", "ok\n"),
        "/readyz" => match state.ready() {
            Ok(()) => respond(&mut stream, "200 OK", "text/plain", "ready\n"),
            Err(reason) => respond(
                &mut stream,
                "503 Service Unavailable",
                "text/plain",
                &format!("not ready: {reason}\n"),
            ),
        },
        "/status" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &state.render_status(),
        ),
        "/flight" => match state.flight() {
            Some(f) => respond(
                &mut stream,
                "200 OK",
                "application/json",
                &f.snapshot().to_json("on-demand"),
            ),
            None => respond(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "no flight recorder attached\n",
            ),
        },
        "/events" => {
            let since = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("since="))
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            stream_events(&mut stream, &state.journal().events_since(since));
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
}

/// Streams journal events as chunked JSONL: one chunk per event line, so
/// a consumer sees events as they are written without a length up front.
fn stream_events(stream: &mut TcpStream, events: &[crate::journal::JournalEvent]) {
    let _ = write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    for e in events {
        let line = format!("{}\n", e.to_json());
        if write!(stream, "{:x}\r\n{line}\r\n", line.len()).is_err() {
            return;
        }
    }
    let _ = write!(stream, "0\r\n\r\n");
}

/// A decoded HTTP response from [`http_get`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// The status code from the response line.
    pub status: u16,
    /// The body, with chunked transfer encoding already decoded.
    pub body: String,
}

/// Minimal HTTP/1.1 GET against an ops-plane route. Decodes chunked
/// bodies (the `/events` stream) and returns non-200 responses rather
/// than erroring, so callers can assert on `/readyz` 503 semantics.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<HttpResponse> {
    let target = addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable addr")
    })?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: naspipe\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed HTTP response")
    })?;
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "missing status code")
        })?;
    let chunked = head
        .lines()
        .any(|l| l.to_ascii_lowercase().replace(' ', "") == "transfer-encoding:chunked");
    let body = if chunked {
        decode_chunked(body).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?
    } else {
        body.to_string()
    };
    Ok(HttpResponse { status, body })
}

fn decode_chunked(mut rest: &str) -> Result<String, String> {
    let mut out = String::new();
    loop {
        let (size_line, tail) = rest.split_once("\r\n").ok_or("truncated chunk size line")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        if size == 0 {
            return Ok(out);
        }
        if tail.len() < size + 2 {
            return Err("truncated chunk body".into());
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{parse_journal, parse_json, JournalLevel};
    use crate::metrics::Counter;

    fn state(stages: u32) -> Arc<OpsState> {
        let hub = Arc::new(TelemetryHub::new(stages as usize, 0));
        let journal = Arc::new(Journal::new(32));
        Arc::new(OpsState::new(
            RunMeta::new("threaded", stages).seed(7),
            hub,
            journal,
        ))
    }

    #[test]
    fn status_document_is_schema_valid_from_empty_to_running() {
        let st = state(3);
        let doc = parse_json(&st.render_status()).expect("status parses");
        assert!(
            validate_status(&doc).is_empty(),
            "{:?}",
            validate_status(&doc)
        );
        assert_eq!(
            doc.get("phase").and_then(JsonValue::as_str),
            Some("starting")
        );

        st.set_phase(RunPhase::Running);
        st.set_total_subnets(8);
        st.set_resume_watermark(2);
        st.note_stage_watermark(1, 4);
        st.record_cut(4);
        let hub = st.hub();
        for k in 0..3 {
            hub.record(k, Counter::ForwardTask, 4);
            hub.record(k, Counter::BackwardTask, 4);
        }
        hub.publish(1_000_000);
        let doc = parse_json(&st.render_status()).expect("status parses");
        assert!(
            validate_status(&doc).is_empty(),
            "{:?}",
            validate_status(&doc)
        );
        assert_eq!(doc.get("ready").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(doc.get("last_cut").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(doc.get("tasks_done").and_then(JsonValue::as_u64), Some(24));
        let rows = doc
            .get("stages_detail")
            .and_then(JsonValue::as_arr)
            .unwrap();
        assert_eq!(
            rows[1].get("watermark").and_then(JsonValue::as_u64),
            Some(4)
        );
        assert_eq!(
            rows[0].get("watermark").and_then(JsonValue::as_u64),
            Some(2)
        );
    }

    #[test]
    fn readiness_follows_phase_and_stall_verdicts() {
        let st = state(2);
        assert!(st.ready().is_err(), "starting is not ready");
        st.set_phase(RunPhase::Running);
        assert!(st.ready().is_ok());
        // A straggler verdict degrades nothing; a stage stall does.
        st.hub()
            .record_watchdog_trip(WatchdogVerdictKind::Straggler);
        assert!(st.ready().is_ok());
        st.hub()
            .record_watchdog_trip(WatchdogVerdictKind::StageStall);
        let err = st.ready().unwrap_err();
        assert!(err.contains("stage-stall"), "{err}");
        st.set_phase(RunPhase::Done);
        assert!(st.ready().is_err(), "done is not admitting work");
    }

    #[test]
    fn server_serves_every_route_with_correct_semantics() {
        let st = state(2);
        st.set_phase(RunPhase::Running);
        st.journal()
            .emit(JournalLevel::Info, "run-start", None, 5, "go", vec![]);
        st.journal().emit(
            JournalLevel::Warn,
            "watchdog-trip",
            Some(1),
            10,
            "watchdog: straggler on stage 1",
            vec![("verdict".into(), "straggler".into())],
        );
        st.hub().publish(100);
        let mut server = OpsServer::bind("127.0.0.1:0", Arc::clone(&st)).expect("bind");
        let addr = server.local_addr().to_string();

        let health = http_get(&addr, "/healthz").unwrap();
        assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));

        let ready = http_get(&addr, "/readyz").unwrap();
        assert_eq!(ready.status, 200);

        let metrics = http_get(&addr, "/metrics").unwrap();
        assert_eq!(metrics.status, 200);
        assert!(metrics.body.contains("naspipe_journal_dropped_total 0"));
        assert!(
            !metrics.body.contains("naspipe_flight_dropped_total"),
            "no flight attached, no flight family"
        );

        let status = http_get(&addr, "/status").unwrap();
        let doc = parse_json(&status.body).expect("status parses");
        assert!(
            validate_status(&doc).is_empty(),
            "{:?}",
            validate_status(&doc)
        );

        let events = http_get(&addr, "/events").unwrap();
        assert_eq!(events.status, 200);
        let parsed = parse_journal(&events.body).expect("events parse");
        assert_eq!(parsed, st.journal().snapshot(), "/events replays the ring");

        let flight = http_get(&addr, "/flight").unwrap();
        assert_eq!(flight.status, 404);
        st.attach_flight(Arc::new(FlightRecorder::new(2, 8)));
        st.flight()
            .unwrap()
            .record(0, 1, crate::flight::FlightEventKind::Admission, 0);
        let flight = http_get(&addr, "/flight").unwrap();
        assert_eq!(flight.status, 200);
        assert!(flight.body.starts_with("{\"reason\":\"on-demand\""));
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.body.contains("naspipe_flight_dropped_total 0"));

        let missing = http_get(&addr, "/nope").unwrap();
        assert_eq!(missing.status, 404);

        // Latch a stall verdict: /readyz must flip to 503.
        st.hub()
            .record_watchdog_trip(WatchdogVerdictKind::StageStall);
        let ready = http_get(&addr, "/readyz").unwrap();
        assert_eq!(ready.status, 503);
        assert!(ready.body.contains("stage-stall"), "{}", ready.body);
        server.shutdown();
    }

    #[test]
    fn events_since_query_filters_the_stream() {
        let st = state(1);
        for i in 0..4u64 {
            st.journal().emit(
                JournalLevel::Info,
                "checkpoint-cut",
                Some(0),
                i,
                format!("w{i}"),
                vec![],
            );
        }
        let server = OpsServer::bind("127.0.0.1:0", Arc::clone(&st)).expect("bind");
        let addr = server.local_addr().to_string();
        let tail = http_get(&addr, "/events?since=2").unwrap();
        let parsed = parse_journal(&tail.body).expect("parses");
        assert_eq!(parsed.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn top_renders_per_stage_lines_from_status_and_metrics() {
        let st = state(2);
        st.set_phase(RunPhase::Running);
        st.set_total_subnets(4);
        let hub = st.hub();
        for k in 0..2 {
            hub.record(k, Counter::ForwardTask, 3);
            hub.record(k, Counter::BackwardTask, 2);
        }
        hub.publish(500_000);
        let doc = parse_json(&st.render_status()).unwrap();
        let frame = render_top(&doc, "naspipe_pool_utilization 0.75\n").expect("renders");
        assert!(frame.contains("naspipe top"), "{frame}");
        assert!(frame.contains("phase running (ready)"), "{frame}");
        assert!(frame.contains("pool util 75%"), "{frame}");
        // One line per stage plus the header row.
        assert!(
            frame.lines().any(|l| l.trim_start().starts_with("0 ")),
            "{frame}"
        );
        assert!(
            frame.lines().any(|l| l.trim_start().starts_with("1 ")),
            "{frame}"
        );
        // A broken document is rejected, not mis-rendered.
        assert!(render_top(&parse_json("{}").unwrap(), "").is_err());
    }

    #[test]
    fn chunked_decoding_round_trips() {
        assert_eq!(
            decode_chunked("5\r\nhello\r\n1\r\n \r\n5\r\nworld\r\n0\r\n\r\n").unwrap(),
            "hello world"
        );
        assert!(decode_chunked("zz\r\nhello").is_err());
        assert!(decode_chunked("5\r\nhel").is_err());
    }
}
