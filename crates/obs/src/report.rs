//! Rendering of recorded metrics: per-stage text tables and JSON.
//!
//! [`ObsReport`] is a plain snapshot produced by
//! [`MetricsRecorder::report`](crate::MetricsRecorder::report); the
//! experiment drivers in `crates/bench` print the
//! [`render_text`](ObsReport::render_text) form after each run and can
//! dump [`to_json`](ObsReport::to_json) for downstream tooling. The JSON
//! is emitted by hand (no serde in the offline dependency closure).

use std::fmt::Write as _;

/// Identity of the run a report (or trace) describes, stamped into the
/// JSON so downstream tooling can detect format or provenance drift.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunMeta {
    /// Which engine produced the data: `"des"` or `"threaded"`.
    pub engine: String,
    /// Number of pipeline stages.
    pub stages: u32,
    /// RNG seed of the run, when one exists.
    pub seed: Option<u64>,
}

impl RunMeta {
    /// Metadata for an engine/stage-count pair.
    pub fn new(engine: &str, stages: u32) -> Self {
        RunMeta {
            engine: engine.to_string(),
            stages,
            seed: None,
        }
    }

    /// Attaches the run seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

/// Derived per-stage observability summary.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageObs {
    /// Pipeline stage index.
    pub stage: u32,
    /// Forward tasks completed.
    pub forward_tasks: u64,
    /// Backward tasks completed.
    pub backward_tasks: u64,
    /// Times a backward was dispatched ahead of a ready forward.
    pub backward_preemptions: u64,
    /// Microseconds idle with inadmissible work queued.
    pub stall_us: u64,
    /// Microseconds idle with an empty queue.
    pub bubble_us: u64,
    /// `stall_us` over the run's wall time.
    pub stall_ratio: f64,
    /// `bubble_us` over the run's wall time.
    pub bubble_ratio: f64,
    /// Context-cache hits.
    pub cache_hits: u64,
    /// Context-cache misses.
    pub cache_misses: u64,
    /// Context-cache evictions.
    pub cache_evictions: u64,
    /// Context-cache prefetches.
    pub cache_prefetches: u64,
    /// Hits over total lookups (0 when no lookups).
    pub cache_hit_rate: f64,
    /// Transient channel faults retried with backoff.
    pub retries: u64,
    /// Times this stage's worker was respawned by the supervisor.
    pub restarts: u64,
    /// Tasks re-executed after a checkpoint rollback.
    pub replayed_tasks: u64,
    /// Compute-pool jobs this stage's tensor kernels fanned out
    /// (shape-gated; worker-count invariant).
    pub pool_jobs: u64,
    /// Compute-pool chunks executed for this stage's jobs (the fixed,
    /// shape-derived work units; worker-count invariant).
    pub pool_chunks: u64,
    /// Microseconds of pool chunk execution attributed to this stage's
    /// jobs (timing-dependent).
    pub pool_busy_us: u64,
    /// Completed watermark cuts this stage persisted to durable storage.
    pub durable_persists: u64,
    /// Cross-process resumes from a durable snapshot (once per resume).
    pub durable_resumes: u64,
    /// Mean queue depth at dispatch decisions and enqueues.
    pub mean_queue_depth: f64,
    /// Largest observed queue depth.
    pub max_queue_depth: u64,
    /// Median observed queue depth.
    pub queue_depth_p50: f64,
    /// 95th-percentile observed queue depth.
    pub queue_depth_p95: f64,
    /// 99th-percentile observed queue depth.
    pub queue_depth_p99: f64,
    /// Mean forward-task latency in microseconds.
    pub fwd_latency_mean_us: f64,
    /// Largest forward-task latency in microseconds.
    pub fwd_latency_max_us: u64,
    /// Median forward-task latency in microseconds.
    pub fwd_latency_p50_us: f64,
    /// 95th-percentile forward-task latency in microseconds.
    pub fwd_latency_p95_us: f64,
    /// 99th-percentile forward-task latency in microseconds.
    pub fwd_latency_p99_us: f64,
    /// Mean backward-task latency in microseconds.
    pub bwd_latency_mean_us: f64,
    /// Largest backward-task latency in microseconds.
    pub bwd_latency_max_us: u64,
    /// Median backward-task latency in microseconds.
    pub bwd_latency_p50_us: f64,
    /// 95th-percentile backward-task latency in microseconds.
    pub bwd_latency_p95_us: f64,
    /// 99th-percentile backward-task latency in microseconds.
    pub bwd_latency_p99_us: f64,
}

impl StageObs {
    /// Fraction of the wall time this stage spent busy (1 − stall −
    /// bubble), clamped to `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        (1.0 - self.stall_ratio - self.bubble_ratio).clamp(0.0, 1.0)
    }
}

/// Version of the JSON layout [`ObsReport::to_json`] emits. Bumped when
/// fields change meaning or disappear; additions alone keep it stable
/// within a major revision.
///
/// Schema 3 = schema 2 plus the compute-pool fields: per-stage
/// `pool_jobs` / `pool_chunks` / `pool_busy_us` and the top-level
/// `"pool"` array of per-worker utilisation. Every schema-2 field keeps
/// its exact key name and value formatting.
///
/// Schema 4 = schema 3 plus the live-telemetry time series: top-level
/// `"samples_dropped"` (snapshots evicted from the ring — truncation is
/// always explicit, never silent) and `"series"`, an array of sampled
/// points (`at_us`, `incarnation`, `pool_busy_us`, per-stage cumulative
/// task/cache/idle counters) that rate curves can be derived from.
/// Every schema-3 field keeps its exact key name and value formatting.
/// Schema 4 later gained the additive per-stage `durable_persists` /
/// `durable_resumes` durability counters.
///
/// Schema 5 = schema 4 plus the diagnosis layer: top-level `"watchdog"`
/// (array of latched detector verdicts — `at_us`, `kind`, `stage`,
/// `detail`) and `"flight"` (flight-recorder totals — `events`,
/// `dropped`, `capacity`). Both are additive; when neither subsystem
/// recorded anything the compact text rendering is byte-identical to
/// schema 4's. Every schema-4 field keeps its exact key name and value
/// formatting.
pub const OBS_SCHEMA_VERSION: u32 = 5;

/// One stage's cumulative counters at a sampled instant (schema-4
/// `"series"` entries; a compressed projection of the live
/// `MetricsSnapshot`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesStage {
    /// Forward tasks completed so far.
    pub forward_tasks: u64,
    /// Backward tasks completed so far.
    pub backward_tasks: u64,
    /// Context-cache hits so far.
    pub cache_hits: u64,
    /// Context-cache misses so far.
    pub cache_misses: u64,
    /// Microseconds causally stalled so far.
    pub stall_us: u64,
    /// Microseconds of pipeline bubble so far.
    pub bubble_us: u64,
    /// Microseconds of compute-pool busy time attributed so far.
    pub pool_busy_us: u64,
}

/// One sampled point of the live-telemetry time series.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeriesPoint {
    /// Run time of the sample in microseconds (wall-clock in the
    /// threaded runtime, simulated in the DES engine).
    pub at_us: u64,
    /// Supervisor incarnation when sampled.
    pub incarnation: u32,
    /// Global compute-pool busy microseconds at the sample.
    pub pool_busy_us: u64,
    /// Per-stage cumulative counters, indexed by stage.
    pub stages: Vec<SeriesStage>,
}

/// Utilisation of one compute-pool worker over a run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PoolWorkerObs {
    /// Worker index (0 is the submitting thread itself).
    pub worker: usize,
    /// Chunks this worker executed.
    pub chunks: u64,
    /// Microseconds this worker spent executing chunks.
    pub busy_us: u64,
    /// Microseconds of the run this worker was not executing chunks.
    pub idle_us: u64,
}

/// A full observability snapshot of one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Total run time in microseconds (simulated or wall-clock).
    pub wall_us: u64,
    /// One summary per pipeline stage.
    pub stages: Vec<StageObs>,
    /// Identity of the run (engine, stage count, seed).
    pub meta: RunMeta,
    /// Compute-pool worker utilisation over the run, when a pool was
    /// used (empty otherwise).
    pub pool: Vec<PoolWorkerObs>,
    /// Sampled telemetry time series, when live telemetry ran (empty
    /// otherwise). Oldest first; capped by the ring capacity.
    pub series: Vec<SeriesPoint>,
    /// Snapshots evicted from the telemetry ring before this report was
    /// built — the explicit truncation count for `series`.
    pub samples_dropped: u64,
    /// Latched watchdog verdicts, in trip order (empty when no detector
    /// fired or the watchdog was off).
    pub watchdog: Vec<crate::watchdog::WatchdogVerdict>,
    /// Flight-recorder totals (all-zero default when no recorder ran).
    pub flight: crate::flight::FlightSummary,
}

impl ObsReport {
    /// Stamps the run metadata (builder-style).
    pub fn with_meta(mut self, meta: RunMeta) -> Self {
        self.meta = meta;
        self
    }

    /// Attaches compute-pool worker utilisation (builder-style).
    pub fn with_pool(mut self, pool: Vec<PoolWorkerObs>) -> Self {
        self.pool = pool;
        self
    }

    /// Attaches the sampled telemetry series with its explicit drop
    /// count (builder-style).
    pub fn with_series(mut self, series: Vec<SeriesPoint>, samples_dropped: u64) -> Self {
        self.series = series;
        self.samples_dropped = samples_dropped;
        self
    }

    /// Attaches the latched watchdog verdicts (builder-style).
    pub fn with_watchdog(mut self, watchdog: Vec<crate::watchdog::WatchdogVerdict>) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Attaches the flight-recorder totals (builder-style).
    pub fn with_flight(mut self, flight: crate::flight::FlightSummary) -> Self {
        self.flight = flight;
        self
    }

    /// Total compute-pool jobs across all stages.
    pub fn pool_jobs(&self) -> u64 {
        self.stages.iter().map(|s| s.pool_jobs).sum()
    }

    /// Total compute-pool chunks across all stages.
    pub fn pool_chunks(&self) -> u64 {
        self.stages.iter().map(|s| s.pool_chunks).sum()
    }
    /// Whole-pipeline bubble ratio: mean of the per-stage bubble ratios.
    pub fn bubble_ratio(&self) -> f64 {
        mean(self.stages.iter().map(|s| s.bubble_ratio))
    }

    /// Whole-pipeline stall ratio: mean of the per-stage stall ratios.
    pub fn stall_ratio(&self) -> f64 {
        mean(self.stages.iter().map(|s| s.stall_ratio))
    }

    /// Total supervisor-driven stage restarts across all stages.
    pub fn restarts(&self) -> u64 {
        self.stages.iter().map(|s| s.restarts).sum()
    }

    /// Total transient-fault retries across all stages.
    pub fn retries(&self) -> u64 {
        self.stages.iter().map(|s| s.retries).sum()
    }

    /// Total replayed tasks across all stages.
    pub fn replayed_tasks(&self) -> u64 {
        self.stages.iter().map(|s| s.replayed_tasks).sum()
    }

    /// Whole-pipeline cache hit rate over all stages' lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.stages.iter().map(|s| s.cache_hits).sum();
        let lookups: u64 = hits + self.stages.iter().map(|s| s.cache_misses).sum::<u64>();
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Renders a human-readable per-stage table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stage  fwd   bwd  preempt  util%  stall%  bubble%  cache-hit%  \
             ev  rst  rty  repl  q-mean  q-max  q(p50/p95/p99)  \
             fwd-us(mean/max)  fwd-us(p50/p95/p99)  \
             bwd-us(mean/max)  bwd-us(p50/p95/p99)"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:>5} {:>5} {:>5} {:>8} {:>6.1} {:>7.1} {:>8.1} {:>11.1} {:>3} \
                 {:>4} {:>4} {:>5} {:>7.1} {:>6} {:>5.1}/{:.1}/{:.1} \
                 {:>9.0}/{:<7} {:>7.0}/{:.0}/{:.0} {:>9.0}/{:<7} {:>7.0}/{:.0}/{:.0}",
                s.stage,
                s.forward_tasks,
                s.backward_tasks,
                s.backward_preemptions,
                100.0 * s.utilization(),
                100.0 * s.stall_ratio,
                100.0 * s.bubble_ratio,
                100.0 * s.cache_hit_rate,
                s.cache_evictions,
                s.restarts,
                s.retries,
                s.replayed_tasks,
                s.mean_queue_depth,
                s.max_queue_depth,
                s.queue_depth_p50,
                s.queue_depth_p95,
                s.queue_depth_p99,
                s.fwd_latency_mean_us,
                s.fwd_latency_max_us,
                s.fwd_latency_p50_us,
                s.fwd_latency_p95_us,
                s.fwd_latency_p99_us,
                s.bwd_latency_mean_us,
                s.bwd_latency_max_us,
                s.bwd_latency_p50_us,
                s.bwd_latency_p95_us,
                s.bwd_latency_p99_us,
            );
        }
        let _ = write!(
            out,
            "total: wall {:.3}s  bubble ratio {:.3}  stall ratio {:.3}  \
             cache hit rate {:.3}  restarts {}  retries {}  replayed {}",
            self.wall_us as f64 / 1e6,
            self.bubble_ratio(),
            self.stall_ratio(),
            self.cache_hit_rate(),
            self.restarts(),
            self.retries(),
            self.replayed_tasks(),
        );
        if self.pool_jobs() > 0 {
            let _ = write!(
                out,
                "  pool jobs {}  chunks {}",
                self.pool_jobs(),
                self.pool_chunks()
            );
        }
        out.push('\n');
        for w in &self.pool {
            let denom = (w.busy_us + w.idle_us).max(1);
            let _ = writeln!(
                out,
                "pool worker {:>2}: chunks {:>8}  busy {:>9}us  idle {:>9}us  busy% {:>5.1}",
                w.worker,
                w.chunks,
                w.busy_us,
                w.idle_us,
                100.0 * w.busy_us as f64 / denom as f64,
            );
        }
        if !self.series.is_empty() || self.samples_dropped > 0 {
            let _ = writeln!(
                out,
                "telemetry: {} samples kept, {} dropped",
                self.series.len(),
                self.samples_dropped,
            );
        }
        for v in &self.watchdog {
            let _ = writeln!(out, "{}", v.render());
        }
        if !self.flight.is_empty() {
            let _ = writeln!(
                out,
                "flight: {} events kept, {} dropped (ring capacity {})",
                self.flight.events, self.flight.dropped, self.flight.capacity,
            );
        }
        out
    }

    /// Renders the report as a JSON object.
    ///
    /// `"schema"` is [`OBS_SCHEMA_VERSION`]; schema-1 fields keep their
    /// exact key names and value formatting, so schema-1 consumers that
    /// ignore unknown keys keep working unchanged.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":{},\"meta\":{{\"engine\":{},\"stages\":{},\"seed\":{}}},\
             \"wall_us\":{},\"bubble_ratio\":{},\"stall_ratio\":{},\
             \"cache_hit_rate\":{},\"stages\":[",
            OBS_SCHEMA_VERSION,
            json_str(&self.meta.engine),
            self.meta.stages,
            self.meta
                .seed
                .map_or_else(|| "null".to_string(), |s| s.to_string()),
            self.wall_us,
            json_f64(self.bubble_ratio()),
            json_f64(self.stall_ratio()),
            json_f64(self.cache_hit_rate()),
        );
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"forward_tasks\":{},\"backward_tasks\":{},\
                 \"backward_preemptions\":{},\"stall_us\":{},\"bubble_us\":{},\
                 \"stall_ratio\":{},\"bubble_ratio\":{},\"utilization\":{},\
                 \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},\
                 \"cache_prefetches\":{},\"cache_hit_rate\":{},\
                 \"retries\":{},\"restarts\":{},\"replayed_tasks\":{},\
                 \"pool_jobs\":{},\"pool_chunks\":{},\"pool_busy_us\":{},\
                 \"durable_persists\":{},\"durable_resumes\":{},\
                 \"mean_queue_depth\":{},\"max_queue_depth\":{},\
                 \"fwd_latency_mean_us\":{},\"fwd_latency_max_us\":{},\
                 \"bwd_latency_mean_us\":{},\"bwd_latency_max_us\":{},\
                 \"queue_depth_p50\":{},\"queue_depth_p95\":{},\
                 \"queue_depth_p99\":{},\
                 \"fwd_latency_p50_us\":{},\"fwd_latency_p95_us\":{},\
                 \"fwd_latency_p99_us\":{},\
                 \"bwd_latency_p50_us\":{},\"bwd_latency_p95_us\":{},\
                 \"bwd_latency_p99_us\":{}}}",
                s.stage,
                s.forward_tasks,
                s.backward_tasks,
                s.backward_preemptions,
                s.stall_us,
                s.bubble_us,
                json_f64(s.stall_ratio),
                json_f64(s.bubble_ratio),
                json_f64(s.utilization()),
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
                s.cache_prefetches,
                json_f64(s.cache_hit_rate),
                s.retries,
                s.restarts,
                s.replayed_tasks,
                s.pool_jobs,
                s.pool_chunks,
                s.pool_busy_us,
                s.durable_persists,
                s.durable_resumes,
                json_f64(s.mean_queue_depth),
                s.max_queue_depth,
                json_f64(s.fwd_latency_mean_us),
                s.fwd_latency_max_us,
                json_f64(s.bwd_latency_mean_us),
                s.bwd_latency_max_us,
                json_f64(s.queue_depth_p50),
                json_f64(s.queue_depth_p95),
                json_f64(s.queue_depth_p99),
                json_f64(s.fwd_latency_p50_us),
                json_f64(s.fwd_latency_p95_us),
                json_f64(s.fwd_latency_p99_us),
                json_f64(s.bwd_latency_p50_us),
                json_f64(s.bwd_latency_p95_us),
                json_f64(s.bwd_latency_p99_us),
            );
        }
        out.push_str("],\"pool\":[");
        for (i, w) in self.pool.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"chunks\":{},\"busy_us\":{},\"idle_us\":{}}}",
                w.worker, w.chunks, w.busy_us, w.idle_us,
            );
        }
        out.push_str("],\"watchdog\":[");
        for (i, v) in self.watchdog.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_us\":{},\"kind\":{},\"stage\":{},\"detail\":{}}}",
                v.at_us,
                json_str(v.kind.name()),
                v.stage,
                json_str(&v.detail),
            );
        }
        let _ = write!(
            out,
            "],\"flight\":{{\"events\":{},\"dropped\":{},\"capacity\":{}}}",
            self.flight.events, self.flight.dropped, self.flight.capacity,
        );
        let _ = write!(
            out,
            ",\"samples_dropped\":{},\"series\":[",
            self.samples_dropped
        );
        for (i, p) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_us\":{},\"incarnation\":{},\"pool_busy_us\":{},\"stages\":[",
                p.at_us, p.incarnation, p.pool_busy_us,
            );
            for (j, s) in p.stages.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"forward_tasks\":{},\"backward_tasks\":{},\"cache_hits\":{},\
                     \"cache_misses\":{},\"stall_us\":{},\"bubble_us\":{},\
                     \"pool_busy_us\":{}}}",
                    s.forward_tasks,
                    s.backward_tasks,
                    s.cache_hits,
                    s.cache_misses,
                    s.stall_us,
                    s.bubble_us,
                    s.pool_busy_us,
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, count) = values.fold((0.0, 0u64), |(s, c), v| (s + v, c + 1));
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Formats a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage_report() -> ObsReport {
        ObsReport {
            wall_us: 1_000_000,
            meta: RunMeta::new("des", 2).seed(7),
            pool: Vec::new(),
            series: Vec::new(),
            samples_dropped: 0,
            watchdog: Vec::new(),
            flight: crate::flight::FlightSummary::default(),
            stages: vec![
                StageObs {
                    stage: 0,
                    forward_tasks: 10,
                    backward_tasks: 10,
                    bubble_ratio: 0.2,
                    stall_ratio: 0.1,
                    cache_hits: 8,
                    cache_misses: 2,
                    cache_hit_rate: 0.8,
                    ..StageObs::default()
                },
                StageObs {
                    stage: 1,
                    forward_tasks: 10,
                    backward_tasks: 10,
                    bubble_ratio: 0.4,
                    stall_ratio: 0.0,
                    cache_hits: 2,
                    cache_misses: 8,
                    cache_hit_rate: 0.2,
                    ..StageObs::default()
                },
            ],
        }
    }

    #[test]
    fn aggregates_are_means_and_totals() {
        let r = two_stage_report();
        assert!((r.bubble_ratio() - 0.3).abs() < 1e-12);
        assert!((r.stall_ratio() - 0.05).abs() < 1e-12);
        assert!((r.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn text_report_mentions_every_stage_and_totals() {
        let text = two_stage_report().render_text();
        assert!(text.contains("bubble ratio 0.300"));
        assert!(text.contains("cache hit rate 0.500"));
        assert_eq!(text.lines().count(), 4); // header + 2 stages + totals
    }

    #[test]
    fn json_is_well_formed_enough() {
        let json = two_stage_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"stage\":").count(), 2);
        assert!(json.contains("\"wall_us\":1000000"));
        assert!(json.contains("\"cache_hit_rate\":0.5"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces: {json}"
        );
    }

    #[test]
    fn json_carries_schema_meta_and_percentiles() {
        let json = two_stage_report().to_json();
        assert!(json.starts_with("{\"schema\":5,"), "schema first: {json}");
        assert!(json.contains("\"meta\":{\"engine\":\"des\",\"stages\":2,\"seed\":7}"));
        for key in [
            "\"queue_depth_p50\":",
            "\"queue_depth_p99\":",
            "\"fwd_latency_p95_us\":",
            "\"bwd_latency_p99_us\":",
        ] {
            assert_eq!(json.matches(key).count(), 2, "missing {key} in {json}");
        }
        // No seed -> null, not absent (fixed key set per schema).
        let unseeded = ObsReport::default().to_json();
        assert!(unseeded.contains("\"seed\":null"));
    }

    #[test]
    fn text_table_surfaces_percentiles() {
        let mut r = two_stage_report();
        r.stages[0].queue_depth_p95 = 4.0;
        r.stages[0].fwd_latency_p99_us = 900.0;
        let text = r.render_text();
        assert!(text.lines().next().unwrap().contains("q(p50/p95/p99)"));
        assert!(text.lines().next().unwrap().contains("fwd-us(p50/p95/p99)"));
    }

    #[test]
    fn recovery_counters_aggregate_and_render() {
        let mut r = two_stage_report();
        r.stages[0].restarts = 1;
        r.stages[1].restarts = 1;
        r.stages[0].retries = 3;
        r.stages[1].replayed_tasks = 7;
        assert_eq!(r.restarts(), 2);
        assert_eq!(r.retries(), 3);
        assert_eq!(r.replayed_tasks(), 7);
        let text = r.render_text();
        assert!(text.contains("restarts 2"));
        assert!(text.contains("replayed 7"));
        let json = r.to_json();
        assert!(json.contains("\"restarts\":1"));
        assert!(json.contains("\"replayed_tasks\":7"));
    }

    #[test]
    fn pool_section_renders_in_text_and_json() {
        let mut r = two_stage_report();
        r.stages[0].pool_jobs = 4;
        r.stages[0].pool_chunks = 32;
        r.stages[1].pool_jobs = 2;
        r.stages[1].pool_chunks = 16;
        r.pool = vec![
            PoolWorkerObs {
                worker: 0,
                chunks: 30,
                busy_us: 900,
                idle_us: 100,
            },
            PoolWorkerObs {
                worker: 1,
                chunks: 18,
                busy_us: 600,
                idle_us: 400,
            },
        ];
        assert_eq!(r.pool_jobs(), 6);
        assert_eq!(r.pool_chunks(), 48);
        let text = r.render_text();
        assert!(text.contains("pool jobs 6  chunks 48"), "{text}");
        assert!(text.contains("pool worker  1"), "{text}");
        assert_eq!(text.lines().count(), 6); // header + 2 stages + totals + 2 workers
        let json = r.to_json();
        assert!(json.contains("\"pool_jobs\":4"));
        assert!(json
            .contains("\"pool\":[{\"worker\":0,\"chunks\":30,\"busy_us\":900,\"idle_us\":100},"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_pool_keeps_compact_rendering() {
        // Runs without pool activity keep the schema-2 text shape: no
        // pool suffix on the totals line and no worker lines.
        let r = two_stage_report();
        let text = r.render_text();
        assert!(!text.contains("pool"), "{text}");
        assert_eq!(text.lines().count(), 4);
        assert!(r.to_json().contains("\"pool\":[]"));
    }

    #[test]
    fn series_embeds_with_explicit_drop_count() {
        let mut r = two_stage_report();
        assert!(r.to_json().contains("\"samples_dropped\":0,\"series\":[]"));
        r = r.with_series(
            vec![
                SeriesPoint {
                    at_us: 1000,
                    incarnation: 0,
                    pool_busy_us: 50,
                    stages: vec![SeriesStage {
                        forward_tasks: 4,
                        cache_hits: 3,
                        ..SeriesStage::default()
                    }],
                },
                SeriesPoint {
                    at_us: 2000,
                    incarnation: 1,
                    pool_busy_us: 90,
                    stages: vec![SeriesStage {
                        forward_tasks: 9,
                        cache_hits: 7,
                        stall_us: 120,
                        ..SeriesStage::default()
                    }],
                },
            ],
            3,
        );
        let json = r.to_json();
        assert!(json.contains("\"samples_dropped\":3"), "{json}");
        assert_eq!(json.matches("\"at_us\":").count(), 2);
        assert!(json.contains("\"at_us\":2000,\"incarnation\":1,\"pool_busy_us\":90"));
        assert!(json.contains("\"forward_tasks\":9"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = r.render_text();
        assert!(
            text.contains("telemetry: 2 samples kept, 3 dropped"),
            "{text}"
        );
    }

    #[test]
    fn empty_watchdog_flight_keeps_compact_rendering() {
        // Like the schema-2/3 pool regression: runs where neither the
        // watchdog nor the flight recorder observed anything keep the
        // schema-4 compact text shape, byte for byte.
        let r = two_stage_report();
        let text = r.render_text();
        assert!(!text.contains("watchdog"), "{text}");
        assert!(!text.contains("flight"), "{text}");
        assert_eq!(text.lines().count(), 4); // header + 2 stages + totals
        let json = r.to_json();
        assert!(
            json.contains("\"watchdog\":[],\"flight\":{\"events\":0,\"dropped\":0,\"capacity\":0}")
        );
    }

    #[test]
    fn watchdog_and_flight_sections_render() {
        let r = two_stage_report()
            .with_watchdog(vec![crate::watchdog::WatchdogVerdict {
                at_us: 1_200_000,
                kind: crate::watchdog::WatchdogVerdictKind::Straggler,
                stage: 1,
                detail: "busy 900000us vs peer median \"100000us\"".into(),
            }])
            .with_flight(crate::flight::FlightSummary {
                events: 42,
                dropped: 3,
                capacity: 256,
            });
        let text = r.render_text();
        assert!(
            text.contains("watchdog: straggler on stage 1 at 1200000us"),
            "{text}"
        );
        assert!(text.contains("flight: 42 events kept, 3 dropped (ring capacity 256)"));
        let json = r.to_json();
        assert!(
            json.contains("\"watchdog\":[{\"at_us\":1200000,\"kind\":\"straggler\",\"stage\":1,")
        );
        assert!(json.contains("\"flight\":{\"events\":42,\"dropped\":3,\"capacity\":256}"));
        // The free-text detail is escaped as a JSON string.
        assert!(json.contains("\\\"100000us\\\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn utilization_clamps() {
        let s = StageObs {
            stall_ratio: 0.7,
            bubble_ratio: 0.6,
            ..StageObs::default()
        };
        assert_eq!(s.utilization(), 0.0);
    }
}
