//! Shared line-buffered stderr writer for single-line progress and
//! watchdog alerts.
//!
//! The telemetry sampler repaints one `\r`-terminated progress line
//! while watchdog alerts (and recovery notices) want whole lines of
//! their own. If both wrote to stderr directly, an alert landing
//! mid-repaint would splice into the progress text. This module owns
//! one process-wide lock: every emission is a single buffered
//! `write_all` + flush under it, and the writer remembers whether a
//! progress line is currently open so alerts clear it (padding over any
//! leftover columns) before taking a fresh line.

use std::io::Write as _;
use std::sync::Mutex;

/// Columns painted by the currently-open progress line (0 = none open).
static OPEN_COLS: Mutex<usize> = Mutex::new(0);

fn lock() -> std::sync::MutexGuard<'static, usize> {
    match OPEN_COLS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn emit(buf: &[u8]) {
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(buf);
    let _ = err.flush();
}

/// Repaints the single progress line (no trailing newline). Shorter
/// repaints pad over the previous line's leftover columns.
pub fn progress(line: &str) {
    let mut open = lock();
    let cols = line.chars().count();
    let mut buf = String::with_capacity(2 * line.len() + *open + 8);
    buf.push('\r');
    buf.push_str(line);
    if cols < *open {
        // Pad over the previous line's leftover columns, then rewrite
        // the text so the cursor rests at its end.
        for _ in cols..*open {
            buf.push(' ');
        }
        buf.push('\r');
        buf.push_str(line);
    }
    *open = cols;
    emit(buf.as_bytes());
}

/// Emits a whole line of its own (e.g. a watchdog alert), clearing any
/// open progress line first. The next [`progress`] call repaints below.
pub fn alert(line: &str) {
    let mut open = lock();
    let mut buf = String::with_capacity(line.len() + *open + 8);
    if *open > 0 {
        buf.push('\r');
        for _ in 0..*open {
            buf.push(' ');
        }
        buf.push('\r');
        *open = 0;
    }
    buf.push_str(line);
    buf.push('\n');
    emit(buf.as_bytes());
}

/// Terminates an open progress line with a newline (end-of-run flush).
/// A no-op when no progress line is open.
pub fn newline() {
    let mut open = lock();
    if *open > 0 {
        *open = 0;
        emit(b"\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The writers target the real stderr, so these tests only exercise
    // the bookkeeping: no panics, the open-line state resets, and
    // concurrent emitters don't deadlock.
    #[test]
    fn progress_alert_newline_sequence_is_safe() {
        progress("epoch 1/4 [####      ] 40%");
        alert("watchdog: straggler on stage 2 at 1200000us (busy 9x median)");
        progress("epoch 1/4 [#####     ] 50%");
        progress("short");
        newline();
        newline(); // idempotent when nothing is open
        assert_eq!(*lock(), 0);
    }

    #[test]
    fn concurrent_emitters_serialize_without_deadlock() {
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    for n in 0..50 {
                        if n % 2 == 0 {
                            progress(&format!("t{i} step {n}"));
                        } else {
                            alert(&format!("t{i} alert {n}"));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        newline();
    }
}
