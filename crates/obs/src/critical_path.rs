//! Offline critical-path analysis over a [`SpanTrace`].
//!
//! Walks backward from the last compute span to time zero, at each step
//! following the *binding* predecessor — whichever of (a) the span's
//! recorded causal edge and (b) the previous compute span on the same
//! stage (the resource edge, derived here rather than recorded) ends
//! latest, i.e. actually gated the start. The walk is contiguous in
//! time: every microsecond of `[0, makespan]` lands in exactly one
//! segment, so the attribution totals sum to the makespan *by
//! construction* — the invariant CI checks against each run.
//!
//! Gap segments (where the critical stage sat idle) are classified by
//! the waiting span's causal edge: a CSP shared-layer writer gate is a
//! **causal stall** (the price of sequential equivalence, Fig. 1 of the
//! paper), an activation/gradient arrival is a pipeline **bubble**, and
//! a parameter-fetch gate is **fetch** wait. These are per-stage
//! comparable with the [`Recorder`](crate::Recorder)'s `StallUs` /
//! `BubbleUs` counters: the critical path visits only idle intervals,
//! so its per-stage idle can never exceed what the recorder measured.

use crate::trace::{CauseKind, Span, SpanId, SpanTrace};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Which bucket a critical-path segment's time lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttrClass {
    /// A compute span (forward/backward/recompute/replay) executing.
    Compute,
    /// Waiting on (or inside) a parameter fetch/prefetch.
    Fetch,
    /// Idle because CSP ordered this task after a shared-layer writer.
    CausalStall,
    /// Idle waiting on pipeline dataflow (activation/gradient arrival,
    /// injection, or nothing to run at all).
    Bubble,
}

impl AttrClass {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            AttrClass::Compute => "compute",
            AttrClass::Fetch => "fetch",
            AttrClass::CausalStall => "causal-stall",
            AttrClass::Bubble => "bubble",
        }
    }
}

/// One contiguous segment of the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// The span executing, or — for gap segments — the span that was
    /// waiting to start.
    pub span: SpanId,
    /// Stage the segment is charged to.
    pub stage: u32,
    /// Bucket the time lands in.
    pub class: AttrClass,
    /// Segment start (inclusive), microseconds.
    pub start_us: u64,
    /// Segment end (exclusive), microseconds.
    pub end_us: u64,
    /// Human description, e.g. `SN3.forward@P1` or
    /// `wait csp-writer-completion(SN2) for SN3.forward@P1`.
    pub label: String,
}

impl PathSegment {
    /// Segment length in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Result of [`critical_path`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// Path segments in chronological order, covering `[0, total_us]`
    /// with no gaps or overlaps.
    pub segments: Vec<PathSegment>,
    /// Total path length — equals the trace makespan by construction.
    pub total_us: u64,
    /// Time in compute segments.
    pub compute_us: u64,
    /// Time in fetch segments (fetch spans + fetch-gated waits).
    pub fetch_us: u64,
    /// Time stalled on CSP shared-layer ordering.
    pub causal_stall_us: u64,
    /// Time in pipeline bubbles.
    pub bubble_us: u64,
    /// Idle (causal-stall + bubble + fetch-wait) charged per stage,
    /// indexed by stage — comparable against the recorder's per-stage
    /// `stall_us + bubble_us` (path idle is a lower bound).
    pub stage_idle_us: Vec<u64>,
}

impl CriticalPath {
    /// `compute + fetch + causal_stall + bubble` — always `total_us`.
    pub fn attributed_us(&self) -> u64 {
        self.compute_us + self.fetch_us + self.causal_stall_us + self.bubble_us
    }

    /// Renders a short text report (totals plus the longest segments).
    pub fn render_text(&self, top: usize) -> String {
        let mut out = String::new();
        let pct = |part: u64| {
            if self.total_us == 0 {
                0.0
            } else {
                100.0 * part as f64 / self.total_us as f64
            }
        };
        let _ = writeln!(out, "critical path: {} us", self.total_us);
        let _ = writeln!(
            out,
            "  compute      {:>10} us ({:5.1}%)",
            self.compute_us,
            pct(self.compute_us)
        );
        let _ = writeln!(
            out,
            "  fetch        {:>10} us ({:5.1}%)",
            self.fetch_us,
            pct(self.fetch_us)
        );
        let _ = writeln!(
            out,
            "  causal stall {:>10} us ({:5.1}%)",
            self.causal_stall_us,
            pct(self.causal_stall_us)
        );
        let _ = writeln!(
            out,
            "  bubble       {:>10} us ({:5.1}%)",
            self.bubble_us,
            pct(self.bubble_us)
        );
        let mut ranked: Vec<&PathSegment> = self.segments.iter().collect();
        ranked.sort_by_key(|s| std::cmp::Reverse(s.dur_us()));
        for seg in ranked.into_iter().take(top) {
            let _ = writeln!(
                out,
                "  [{:>8}..{:>8}] {:<12} {}",
                seg.start_us,
                seg.end_us,
                seg.class.name(),
                seg.label
            );
        }
        out
    }
}

fn classify_span(span: &Span) -> AttrClass {
    if span.kind.is_compute() {
        AttrClass::Compute
    } else {
        AttrClass::Fetch
    }
}

fn classify_gap(waiter: &Span) -> AttrClass {
    match waiter.cause.map(|c| c.kind) {
        Some(CauseKind::CspWriterCompletion { .. }) => AttrClass::CausalStall,
        Some(CauseKind::FetchCompletion) => AttrClass::Fetch,
        // Arrival waits, injection latency, recovery gaps, and
        // causeless idling are all dataflow bubbles.
        _ => AttrClass::Bubble,
    }
}

/// Computes the critical path through `trace`. Empty traces yield an
/// empty path with `total_us == 0`.
pub fn critical_path(trace: &SpanTrace) -> CriticalPath {
    let mut cp = CriticalPath {
        stage_idle_us: vec![0; trace.num_stages() as usize],
        ..CriticalPath::default()
    };
    let by_id: HashMap<SpanId, &Span> = trace.spans().iter().map(|s| (s.id, s)).collect();

    // Per-stage compute spans in time order, for resource edges.
    let mut stage_compute: Vec<Vec<&Span>> = vec![Vec::new(); trace.num_stages() as usize];
    for span in trace.spans() {
        if span.kind.is_compute() {
            stage_compute[span.stage as usize].push(span);
        }
    }

    // The walk seed: the compute span with the latest end (ties broken
    // toward the later start, then larger id, for determinism).
    let Some(last) = trace
        .spans()
        .iter()
        .filter(|s| s.kind.is_compute())
        .max_by_key(|s| (s.end_us, s.start_us, s.id))
    else {
        return cp;
    };
    cp.total_us = last.end_us;

    let mut segments_rev: Vec<PathSegment> = Vec::new();
    let mut cursor = last.end_us;
    let mut current = last;
    let mut steps = 0usize;
    let max_steps = 2 * trace.len() + 4;

    loop {
        steps += 1;
        debug_assert!(steps <= max_steps, "critical-path walk failed to converge");
        if steps > max_steps {
            break;
        }

        // Span segment: the portion of `current` below the cursor.
        if cursor > current.start_us {
            segments_rev.push(PathSegment {
                span: current.id,
                stage: current.stage,
                class: classify_span(current),
                start_us: current.start_us,
                end_us: cursor,
                label: current.label(),
            });
            cursor = current.start_us;
        }
        if cursor == 0 {
            break;
        }

        // Candidate predecessors, binding = latest end.
        let causal = current
            .cause
            .and_then(|c| by_id.get(&c.src).copied())
            .filter(|s| s.end_us <= cursor && s.start_us < cursor);
        let resource = stage_compute[current.stage as usize]
            .iter()
            .rev()
            .find(|s| s.end_us <= cursor && s.id != current.id)
            .copied();
        let pred = match (causal, resource) {
            (Some(a), Some(b)) => Some(if a.end_us >= b.end_us { a } else { b }),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };

        let pred_end = pred.map(|p| p.end_us).unwrap_or(0);
        if pred_end < cursor {
            // Gap: the critical stage sat idle waiting for `current` to
            // become runnable. Classified by why `current` was waiting.
            let class = classify_gap(current);
            cp.stage_idle_us[current.stage as usize] += cursor - pred_end;
            segments_rev.push(PathSegment {
                span: current.id,
                stage: current.stage,
                class,
                start_us: pred_end,
                end_us: cursor,
                label: match current.cause {
                    Some(edge) => format!("wait {} for {}", edge.kind, current.label()),
                    None => format!("idle before {}", current.label()),
                },
            });
            cursor = pred_end;
        }
        match pred {
            Some(p) if cursor > 0 => current = p,
            _ => break,
        }
    }

    segments_rev.reverse();
    for seg in &segments_rev {
        let dur = seg.dur_us();
        match seg.class {
            AttrClass::Compute => cp.compute_us += dur,
            AttrClass::Fetch => cp.fetch_us += dur,
            AttrClass::CausalStall => cp.causal_stall_us += dur,
            AttrClass::Bubble => cp.bubble_us += dur,
        }
    }
    cp.segments = segments_rev;
    debug_assert_eq!(cp.attributed_us(), cp.total_us);
    debug_assert!(
        cp.segments.windows(2).all(|w| w[0].end_us == w[1].start_us),
        "path segments must be contiguous"
    );
    cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanDraft, SpanId, SpanKind, SpanTracer, Tracer};

    /// Hand-built 2-stage / 3-subnet schedule with a known answer.
    ///
    /// Stage 0 (us): F0 [0,10]  F1 [10,20]  F2 [25,35]   (F2 gated by a
    ///   CSP writer: B0@P0 finishing at 25)
    /// Stage 0 bwd:  B0 [15,25] is on stage 0? — keep it simple: the
    ///   writer is modelled as B0 on stage 0, [15,25].
    /// Stage 1: fetch [10,12], F0' [12,22] (fetch-gated), F1' [22,32],
    ///   F2' [37,47] (activation of F2 arrives at 35 + 2 transfer = 37).
    ///
    /// Expected critical path (walking back from F2'@P1 end=47):
    ///   F2' [37,47] compute ->
    ///   gap [35,37] bubble (activation arrival) ->
    ///   F2  [25,35] compute ->
    ///   gap? none: writer B0 ends exactly 25 ->
    ///   B0  [15,25] compute ->
    ///   F1  [10,20]? no — B0's resource/causal pred: F1 ends 20 > 15?
    ///   B0 cause: gradient arrival from F0'@P1 ending 22 > 15 — not
    ///   admissible (ends after B0 starts), so model B0 causeless;
    ///   resource pred on stage 0 with end <= 15 is F0 [0,10] -> gap
    ///   [10,15] bubble -> F0 [0,10] compute -> done.
    /// Totals: compute 10+10+10+10 = 40, bubble 2+5 = 7, total 47.
    fn known_schedule() -> (SpanTrace, Vec<SpanId>) {
        let mut t = SpanTracer::new();
        let f0 = t.emit(
            SpanDraft::new(0, SpanKind::Forward, 0, 10)
                .subnet(0)
                .caused_by(SpanId::EXTERNAL, CauseKind::Injection),
        );
        let f1 = t.emit(
            SpanDraft::new(0, SpanKind::Forward, 10, 20)
                .subnet(1)
                .caused_by(SpanId::EXTERNAL, CauseKind::Injection),
        );
        let b0 = t.emit(SpanDraft::new(0, SpanKind::Backward, 15, 25).subnet(0));
        let f2 = t.emit(
            SpanDraft::new(0, SpanKind::Forward, 25, 35)
                .subnet(2)
                .caused_by(b0, CauseKind::CspWriterCompletion { writer: 0 }),
        );
        let fetch = t.emit(SpanDraft::new(1, SpanKind::Fetch, 10, 12).subnet(0));
        let f0p = t.emit(
            SpanDraft::new(1, SpanKind::Forward, 12, 22)
                .subnet(0)
                .caused_by(fetch, CauseKind::FetchCompletion),
        );
        let f1p = t.emit(
            SpanDraft::new(1, SpanKind::Forward, 22, 32)
                .subnet(1)
                .caused_by(f1, CauseKind::ActivationArrival),
        );
        let f2p = t.emit(
            SpanDraft::new(1, SpanKind::Forward, 37, 47)
                .subnet(2)
                .caused_by(f2, CauseKind::ActivationArrival),
        );
        (t.take(), vec![f0, f1, b0, f2, fetch, f0p, f1p, f2p])
    }

    #[test]
    fn hand_built_schedule_has_known_answer() {
        let (trace, ids) = known_schedule();
        let cp = critical_path(&trace);
        assert_eq!(cp.total_us, 47);
        assert_eq!(cp.total_us, trace.makespan_us());
        assert_eq!(cp.attributed_us(), cp.total_us);
        assert_eq!(cp.compute_us, 40);
        assert_eq!(cp.bubble_us, 7);
        assert_eq!(cp.causal_stall_us, 0);
        assert_eq!(cp.fetch_us, 0);
        let path: Vec<SpanId> = cp.segments.iter().map(|s| s.span).collect();
        let (f0, b0, f2, f2p) = (ids[0], ids[2], ids[3], ids[7]);
        // f0, gap-before-b0, b0, f2, gap-before-f2p, f2p
        assert_eq!(path, vec![f0, b0, b0, f2, f2p, f2p]);
        // Idle charged where the waiting happened: 5us on P0, 2us on P1.
        assert_eq!(cp.stage_idle_us, vec![5, 2]);
    }

    #[test]
    fn csp_writer_gate_counts_as_causal_stall() {
        // One stage: F0 [0,10], then B0 [12,20] gated by F0's writer
        // completion with a 2us gap.
        let mut t = SpanTracer::new();
        let f0 = t.emit(SpanDraft::new(0, SpanKind::Forward, 0, 10).subnet(0));
        t.emit(
            SpanDraft::new(0, SpanKind::Forward, 12, 20)
                .subnet(1)
                .caused_by(f0, CauseKind::CspWriterCompletion { writer: 0 }),
        );
        let cp = critical_path(&t.take());
        assert_eq!(cp.total_us, 20);
        assert_eq!(cp.compute_us, 18);
        assert_eq!(cp.causal_stall_us, 2);
        assert_eq!(cp.stage_idle_us, vec![2]);
    }

    #[test]
    fn fetch_gate_attributes_fetch_time() {
        // Fetch [0,6] then forward [6,16] gated on it; path enters the
        // fetch span itself (resource lane empty before).
        let mut t = SpanTracer::new();
        let fetch = t.emit(SpanDraft::new(0, SpanKind::Fetch, 0, 6).subnet(0));
        t.emit(
            SpanDraft::new(0, SpanKind::Forward, 6, 16)
                .subnet(0)
                .caused_by(fetch, CauseKind::FetchCompletion),
        );
        let cp = critical_path(&t.take());
        assert_eq!(cp.total_us, 16);
        assert_eq!(cp.compute_us, 10);
        assert_eq!(cp.fetch_us, 6);
        assert_eq!(cp.bubble_us, 0);
    }

    #[test]
    fn empty_trace_is_empty_path() {
        let cp = critical_path(&SpanTrace::default());
        assert_eq!(cp.total_us, 0);
        assert!(cp.segments.is_empty());
    }

    #[test]
    fn late_start_attributes_leading_bubble() {
        let mut t = SpanTracer::new();
        t.emit(SpanDraft::new(0, SpanKind::Forward, 5, 15).subnet(0));
        let cp = critical_path(&t.take());
        assert_eq!(cp.total_us, 15);
        assert_eq!(cp.compute_us, 10);
        assert_eq!(cp.bubble_us, 5);
        assert_eq!(cp.segments[0].start_us, 0);
        assert!(cp.segments[0].label.starts_with("idle before"));
    }

    #[test]
    fn render_text_mentions_all_classes() {
        let (trace, _) = known_schedule();
        let text = critical_path(&trace).render_text(3);
        assert!(text.contains("critical path: 47 us"));
        assert!(text.contains("compute"));
        assert!(text.contains("bubble"));
    }
}
