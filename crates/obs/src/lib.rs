//! Observability and correctness tooling for the NASPipe runtimes.
//!
//! The crate has three layers, mirroring the needs of the simulator
//! (`naspipe-core::pipeline`) and the threaded runtime
//! (`naspipe-core::runtime`):
//!
//! 1. **Metrics** ([`metrics`]): a lightweight [`Recorder`] trait with
//!    per-stage counters and histograms — queue depth, backward-first
//!    preemptions, stall/bubble time, context-cache hits/misses/evictions,
//!    and forward/backward task latency. [`MetricsRecorder`] is the
//!    in-memory implementation; per-worker recorders from the threaded
//!    runtime merge into one via [`MetricsRecorder::merge`].
//! 2. **Invariants** ([`invariant`]): [`CspChecker`] validates the causal
//!    synchronous parallelism contract on every task admission — no
//!    unfinished earlier subnet may still own a layer the admitted task
//!    touches — including the `min(K, s_w)` layer-mirroring refinement,
//!    and cross-checks the observed read/write interleaving per shared
//!    layer against sequential exploration order. Violations name the
//!    subnet pair and the shared layer.
//! 3. **Reports** ([`report`]): [`ObsReport`] renders the recorded
//!    metrics as a human-readable per-stage table or as JSON, for the
//!    `crates/bench` experiment drivers.
//! 4. **Tracing** ([`trace`]): the [`Tracer`] trait emits per-task
//!    [`Span`]s — forward/backward, fetch/prefetch/evict, checkpoint,
//!    restart/replay — each carrying a causal edge naming why it started
//!    when it did (activation arrival, CSP shared-layer writer
//!    completion, fetch completion, recovery replay). Consumers:
//!    [`chrome`] exports Chrome trace-event JSON loadable in Perfetto
//!    (with flow events drawing the causal edges), and [`critical_path`]
//!    walks the span DAG to attribute the end-to-end makespan to
//!    compute, fetch, causal stall, and pipeline bubble.
//! 5. **Live telemetry** ([`telemetry`] + [`expo`]): a [`TelemetryHub`]
//!    of lock-light per-stage atomic cells mirrors the recorder stream
//!    while the run is still in flight ([`TeeRecorder`]); a sampler
//!    publishes [`MetricsSnapshot`]s onto a fixed-capacity ring, rates
//!    are derived between snapshots, and [`expo`] serves the whole
//!    thing as hand-rolled Prometheus 0.0.4 text over a
//!    `std::net::TcpListener` ([`MetricsServer`]) — plus the parser /
//!    validator the `repro telemetry` hard verdicts are built on.
//! 6. **Diagnosis** ([`flight`] + [`watchdog`] + [`doctor`]): an
//!    always-on bounded [`FlightRecorder`] of compact per-stage events
//!    (dumped to `.flight.json` on faults, watchdog trips, or request),
//!    a [`Watchdog`] running stall / straggler / CSP-convoy detectors
//!    over the telemetry snapshot stream (deterministic in the DES,
//!    advisory under wall clock), and [`doctor::diagnose`] which diffs
//!    two runs' critical paths into ranked attribution deltas and a
//!    kernel-vs-scheduling verdict. [`status`] serializes the sampler's
//!    progress line and watchdog alerts onto stderr without mid-line
//!    interleaving.
//! 7. **Ops plane** ([`ops`] + [`journal`]): a multi-route HTTP surface
//!    (`/metrics`, `/healthz`, `/readyz`, `/status`, `/flight`,
//!    `/events`) over one run's live state, and the unified structured
//!    [`Journal`] — one bounded JSONL event log replacing the scattered
//!    stderr side channels, consumed by `/events`, `--journal PATH`,
//!    and `naspipe doctor`. Still hand-rolled on `std::net`, still
//!    bitwise zero-effect on results.
//!
//! The crate deliberately has no dependency on `naspipe-core`: the
//! runtimes resolve their own partition/stage types into plain
//! `(LayerRef, stage)` pairs before talking to the checker, so the
//! tooling stays reusable across the event-driven simulator and the real
//! threaded runtime.

pub mod chrome;
pub mod critical_path;
pub mod doctor;
pub mod expo;
pub mod flight;
pub mod invariant;
pub mod journal;
pub mod metrics;
pub mod ops;
pub mod report;
pub mod status;
pub mod telemetry;
pub mod trace;
pub mod watchdog;

pub use chrome::{export_chrome, parse_chrome, ChromeParseError};
pub use critical_path::{critical_path, AttrClass, CriticalPath, PathSegment};
pub use doctor::{
    bench_deltas, diagnose, explain_bench_check, explain_replay, flight_kind_counts,
    journal_summary, BenchDelta, Diagnosis, SpanShift, StageDelta, StallExport, StragglerRank,
};
pub use expo::{
    counter_values, monotonicity_violations, render_exposition, render_exposition_ops, scrape,
    validate_exposition, MetricsServer,
};
pub use flight::{
    FlightEvent, FlightEventKind, FlightLog, FlightRecorder, FlightSummary, DEFAULT_FLIGHT_CAPACITY,
};
pub use invariant::{CspChecker, Violation};
pub use journal::{
    parse_event, parse_journal, parse_json, validate_journal, Journal, JournalEvent, JournalLevel,
    JsonValue, DEFAULT_JOURNAL_CAPACITY, JOURNAL_SCHEMA_VERSION,
};
pub use metrics::{Counter, Histogram, MetricsRecorder, NullRecorder, Recorder, Sample};
pub use ops::{
    http_get, render_top, validate_status, HttpResponse, OpsServer, OpsState, RunPhase,
    STATUS_SCHEMA_VERSION,
};
pub use report::{
    ObsReport, PoolWorkerObs, RunMeta, SeriesPoint, SeriesStage, StageObs, OBS_SCHEMA_VERSION,
};
pub use telemetry::{
    derive_rates, MetricsSnapshot, RatePoint, StageRate, TeeRecorder, TelemetryHub,
    TelemetryOptions,
};
pub use trace::{
    CausalEdge, CauseKind, NullTracer, Span, SpanDraft, SpanId, SpanKind, SpanTrace, SpanTracer,
    Tracer,
};
pub use watchdog::{
    Watchdog, WatchdogConfig, WatchdogVerdict, WatchdogVerdictKind, NUM_WATCHDOG_KINDS,
};
