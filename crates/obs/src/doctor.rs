//! Automated regression diagnosis over two runs' artifacts.
//!
//! [`diagnose`] takes a baseline and a candidate [`SpanTrace`], runs
//! [`critical_path`] over both, and ranks where the makespan delta went:
//! per-class and per-stage attribution deltas (compute / fetch /
//! causal-stall / bubble), the top-k spans whose durations shifted the
//! most, and a per-stage compute-time straggler ranking. Because the
//! critical path attributes every microsecond of each run by
//! construction, the four class deltas sum to the measured makespan
//! delta *exactly* — the invariant `repro doctor` asserts.
//!
//! The `explain_*` helpers turn existing gate failures into the same
//! vocabulary: [`explain_bench_check`] renders a kernel-vs-scheduling
//! verdict from `bench-check` rows, and [`explain_replay`] summarizes a
//! replay-gate divergence report. Both are invoked automatically by the
//! CLI's `--explain` flags.

use crate::critical_path::{critical_path, AttrClass};
use crate::trace::{CauseKind, SpanKind, SpanTrace};
use std::collections::HashMap;
use std::fmt::Write as _;

/// All four attribution classes in the fixed report order.
const CLASSES: [AttrClass; 4] = [
    AttrClass::Compute,
    AttrClass::Fetch,
    AttrClass::CausalStall,
    AttrClass::Bubble,
];

/// One class's attributed time in each run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassDelta {
    /// Which attribution bucket.
    pub class: AttrClass,
    /// Microseconds attributed in the baseline run.
    pub base_us: u64,
    /// Microseconds attributed in the candidate run.
    pub cand_us: u64,
}

impl ClassDelta {
    /// Candidate minus baseline, signed.
    pub fn delta_us(&self) -> i64 {
        self.cand_us as i64 - self.base_us as i64
    }
}

/// One stage's signed per-class attribution deltas (candidate − base).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageDelta {
    /// Stage index.
    pub stage: u32,
    /// Compute delta, us.
    pub compute_us: i64,
    /// Fetch delta, us.
    pub fetch_us: i64,
    /// Causal-stall delta, us.
    pub causal_stall_us: i64,
    /// Bubble delta, us.
    pub bubble_us: i64,
}

impl StageDelta {
    /// Sum of this stage's class deltas.
    pub fn total_us(&self) -> i64 {
        self.compute_us + self.fetch_us + self.causal_stall_us + self.bubble_us
    }
}

/// A span (matched between runs by stage, kind, subnet, and occurrence
/// index) whose duration shifted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanShift {
    /// Stage the span ran on.
    pub stage: u32,
    /// Span kind name (`forward`, `backward`, ...).
    pub kind: &'static str,
    /// Subnet, if the span had one.
    pub subnet: Option<u64>,
    /// Occurrence index of this (stage, kind, subnet) key, 0-based.
    pub occurrence: usize,
    /// Baseline duration, us.
    pub base_us: u64,
    /// Candidate duration, us.
    pub cand_us: u64,
}

impl SpanShift {
    /// Candidate minus baseline, signed.
    pub fn delta_us(&self) -> i64 {
        self.cand_us as i64 - self.base_us as i64
    }

    fn label(&self) -> String {
        match self.subnet {
            Some(s) => format!("SN{s}.{}@P{}", self.kind, self.stage),
            None => format!("{}@P{}", self.kind, self.stage),
        }
    }
}

/// Per-stage cumulative compute-duration delta, for straggler ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StragglerRank {
    /// Stage index.
    pub stage: u32,
    /// Total compute-span duration delta (candidate − base), us.
    pub compute_delta_us: i64,
}

/// Per-stage *exported stall*: idle time the rest of the schedule spent
/// waiting on work bound to this stage, summed over the whole trace.
///
/// For every compute span that started after an idle gap on its own
/// stage, the gap is credited to the stage of the causal edge that
/// released it — an activation, gradient, or CSP-writer completion.
/// Unlike the critical-path class deltas, this sees *all* induced
/// waiting: a slowed stage keeps itself busy (its own path segments
/// classify as compute) while exporting stall to every stage waiting on
/// its outputs, and that export is what this ranking surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallExport {
    /// Stage the waiting was bound to (the cause's source stage).
    pub stage: u32,
    /// Microseconds of waiting it induced in the baseline run.
    pub base_us: u64,
    /// Microseconds of waiting it induced in the candidate run.
    pub cand_us: u64,
}

impl StallExport {
    /// Candidate minus baseline, signed.
    pub fn delta_us(&self) -> i64 {
        self.cand_us as i64 - self.base_us as i64
    }
}

/// The ranked diagnosis [`diagnose`] produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// Baseline makespan (critical-path total), us.
    pub base_total_us: u64,
    /// Candidate makespan, us.
    pub cand_total_us: u64,
    /// The four attribution classes, fixed order. Their signed deltas
    /// sum to `cand_total_us - base_total_us` exactly.
    pub classes: Vec<ClassDelta>,
    /// Per-stage signed class deltas, stage order.
    pub stages: Vec<StageDelta>,
    /// Top-k spans by absolute duration shift, largest first.
    pub shifts: Vec<SpanShift>,
    /// Stages ranked by compute-duration growth, largest first.
    pub stragglers: Vec<StragglerRank>,
    /// Stages ranked by exported-stall growth (trace-wide idle time
    /// their causal edges induced in waiters), largest first.
    pub exporters: Vec<StallExport>,
    /// The class with the largest absolute delta.
    pub dominant: AttrClass,
    /// `"kernel"` when the dominant delta is compute, else
    /// `"scheduling"`.
    pub verdict: &'static str,
}

impl Diagnosis {
    /// Candidate minus baseline makespan, signed.
    pub fn makespan_delta_us(&self) -> i64 {
        self.cand_total_us as i64 - self.base_total_us as i64
    }

    /// Sum of the four class deltas — equals
    /// [`makespan_delta_us`](Self::makespan_delta_us) by construction.
    pub fn class_delta_sum_us(&self) -> i64 {
        self.classes.iter().map(|c| c.delta_us()).sum()
    }

    /// Human-readable ranked report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "doctor: makespan {} -> {} us ({}{} us)",
            self.base_total_us,
            self.cand_total_us,
            if self.makespan_delta_us() >= 0 {
                "+"
            } else {
                ""
            },
            self.makespan_delta_us()
        );
        let _ = writeln!(
            out,
            "verdict: {} (dominant delta: {})",
            self.verdict,
            self.dominant.name()
        );
        let _ = writeln!(out, "attribution deltas (candidate - baseline):");
        for c in &self.classes {
            let _ = writeln!(
                out,
                "  {:<12} {:>10} -> {:>10} us  ({}{} us)",
                c.class.name(),
                c.base_us,
                c.cand_us,
                if c.delta_us() >= 0 { "+" } else { "" },
                c.delta_us()
            );
        }
        if !self.stragglers.is_empty() {
            let _ = writeln!(out, "straggler ranking (compute-time growth):");
            for s in &self.stragglers {
                let _ = writeln!(
                    out,
                    "  stage {:<3} {}{} us",
                    s.stage,
                    if s.compute_delta_us >= 0 { "+" } else { "" },
                    s.compute_delta_us
                );
            }
        }
        if !self.exporters.is_empty() {
            let _ = writeln!(
                out,
                "exported-stall ranking (idle time induced in waiters):"
            );
            for e in &self.exporters {
                let _ = writeln!(
                    out,
                    "  stage {:<3} {:>10} -> {:>10} us  ({}{} us)",
                    e.stage,
                    e.base_us,
                    e.cand_us,
                    if e.delta_us() >= 0 { "+" } else { "" },
                    e.delta_us()
                );
            }
        }
        if !self.shifts.is_empty() {
            let _ = writeln!(out, "top shifted spans:");
            for s in &self.shifts {
                let _ = writeln!(
                    out,
                    "  {:<24} #{:<3} {:>8} -> {:>8} us  ({}{} us)",
                    s.label(),
                    s.occurrence,
                    s.base_us,
                    s.cand_us,
                    if s.delta_us() >= 0 { "+" } else { "" },
                    s.delta_us()
                );
            }
        }
        out
    }

    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"base_total_us\":{},\"cand_total_us\":{},\"makespan_delta_us\":{},\
             \"verdict\":\"{}\",\"dominant\":\"{}\",\"classes\":[",
            self.base_total_us,
            self.cand_total_us,
            self.makespan_delta_us(),
            self.verdict,
            self.dominant.name()
        );
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"class\":\"{}\",\"base_us\":{},\"cand_us\":{},\"delta_us\":{}}}",
                c.class.name(),
                c.base_us,
                c.cand_us,
                c.delta_us()
            );
        }
        out.push_str("],\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"compute_us\":{},\"fetch_us\":{},\"causal_stall_us\":{},\
                 \"bubble_us\":{}}}",
                s.stage, s.compute_us, s.fetch_us, s.causal_stall_us, s.bubble_us
            );
        }
        out.push_str("],\"stragglers\":[");
        for (i, s) in self.stragglers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"compute_delta_us\":{}}}",
                s.stage, s.compute_delta_us
            );
        }
        out.push_str("],\"exporters\":[");
        for (i, e) in self.exporters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"base_us\":{},\"cand_us\":{},\"delta_us\":{}}}",
                e.stage,
                e.base_us,
                e.cand_us,
                e.delta_us()
            );
        }
        out.push_str("],\"shifts\":[");
        for (i, s) in self.shifts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"kind\":\"{}\",\"subnet\":{},\"occurrence\":{},\
                 \"base_us\":{},\"cand_us\":{},\"delta_us\":{}}}",
                s.stage,
                s.kind,
                s.subnet
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "null".into()),
                s.occurrence,
                s.base_us,
                s.cand_us,
                s.delta_us()
            );
        }
        out.push_str("]}");
        out
    }
}

fn kind_name(kind: SpanKind) -> &'static str {
    match kind {
        SpanKind::Forward => "forward",
        SpanKind::Backward => "backward",
        SpanKind::Recompute => "recompute",
        SpanKind::Fetch => "fetch",
        SpanKind::Prefetch => "prefetch",
        SpanKind::Evict => "evict",
        SpanKind::Checkpoint => "checkpoint",
        SpanKind::Restart => "restart",
        SpanKind::Replay => "replay",
    }
}

/// Span durations grouped by identity key, in time order (the trace is
/// already `(start, end, id)`-sorted, so occurrence indices line up
/// between two runs of the same schedule).
fn span_durations(trace: &SpanTrace) -> HashMap<(u32, SpanKind, Option<u64>), Vec<u64>> {
    let mut map: HashMap<(u32, SpanKind, Option<u64>), Vec<u64>> = HashMap::new();
    for span in trace.spans() {
        map.entry((span.stage, span.kind, span.subnet))
            .or_default()
            .push(span.end_us - span.start_us);
    }
    map
}

/// Trace-wide exported stall per stage: for each compute span that sat
/// idle on its stage before starting, the idle gap is credited to the
/// stage of the causal edge that released it. Pipeline-fill gaps appear
/// in both runs and cancel in the delta.
fn exported_stall(trace: &SpanTrace, num_stages: usize) -> Vec<u64> {
    let mut credit = vec![0u64; num_stages];
    let mut last_end = vec![0u64; num_stages];
    for span in trace.spans().iter().filter(|s| s.kind.is_compute()) {
        let stage = span.stage as usize;
        let gap = span.start_us.saturating_sub(last_end[stage]);
        if gap > 0 {
            if let Some(edge) = span.cause {
                let dependency = matches!(
                    edge.kind,
                    CauseKind::ActivationArrival
                        | CauseKind::GradientArrival
                        | CauseKind::CspWriterCompletion { .. }
                );
                if dependency {
                    if let Some(src) = trace.get(edge.src) {
                        credit[src.stage as usize] += gap;
                    }
                }
            }
        }
        last_end[stage] = last_end[stage].max(span.end_us);
    }
    credit
}

/// Diagnoses where the makespan delta between `base` and `cand` went.
/// `top` bounds the shifted-span ranking length.
pub fn diagnose(base: &SpanTrace, cand: &SpanTrace, top: usize) -> Diagnosis {
    let bp = critical_path(base);
    let cp = critical_path(cand);

    let pick = |p: &crate::critical_path::CriticalPath, class: AttrClass| match class {
        AttrClass::Compute => p.compute_us,
        AttrClass::Fetch => p.fetch_us,
        AttrClass::CausalStall => p.causal_stall_us,
        AttrClass::Bubble => p.bubble_us,
    };
    let classes: Vec<ClassDelta> = CLASSES
        .iter()
        .map(|&class| ClassDelta {
            class,
            base_us: pick(&bp, class),
            cand_us: pick(&cp, class),
        })
        .collect();

    // Per-stage class deltas from the path segments themselves.
    let num_stages = base.num_stages().max(cand.num_stages()) as usize;
    let mut stages: Vec<StageDelta> = (0..num_stages)
        .map(|k| StageDelta {
            stage: k as u32,
            ..StageDelta::default()
        })
        .collect();
    let mut add = |segments: &[crate::critical_path::PathSegment], sign: i64| {
        for seg in segments {
            let s = &mut stages[seg.stage as usize];
            let dur = sign * seg.dur_us() as i64;
            match seg.class {
                AttrClass::Compute => s.compute_us += dur,
                AttrClass::Fetch => s.fetch_us += dur,
                AttrClass::CausalStall => s.causal_stall_us += dur,
                AttrClass::Bubble => s.bubble_us += dur,
            }
        }
    };
    add(&bp.segments, -1);
    add(&cp.segments, 1);

    // Top-k shifted spans, matched by (stage, kind, subnet, occurrence).
    let base_durs = span_durations(base);
    let cand_durs = span_durations(cand);
    let mut shifts: Vec<SpanShift> = Vec::new();
    for ((stage, kind, subnet), bd) in &base_durs {
        let empty = Vec::new();
        let cd = cand_durs.get(&(*stage, *kind, *subnet)).unwrap_or(&empty);
        for (occurrence, (&b, &c)) in bd.iter().zip(cd.iter()).enumerate() {
            if b != c {
                shifts.push(SpanShift {
                    stage: *stage,
                    kind: kind_name(*kind),
                    subnet: *subnet,
                    occurrence,
                    base_us: b,
                    cand_us: c,
                });
            }
        }
    }
    shifts.sort_by_key(|s| {
        (
            std::cmp::Reverse(s.delta_us().unsigned_abs()),
            s.stage,
            s.subnet,
            s.occurrence,
        )
    });
    shifts.truncate(top);

    // Straggler ranking: per-stage total compute-span duration delta.
    let mut compute_delta = vec![0i64; num_stages];
    for span in base.spans().iter().filter(|s| s.kind.is_compute()) {
        compute_delta[span.stage as usize] -= (span.end_us - span.start_us) as i64;
    }
    for span in cand.spans().iter().filter(|s| s.kind.is_compute()) {
        compute_delta[span.stage as usize] += (span.end_us - span.start_us) as i64;
    }
    let mut stragglers: Vec<StragglerRank> = compute_delta
        .iter()
        .enumerate()
        .map(|(k, &d)| StragglerRank {
            stage: k as u32,
            compute_delta_us: d,
        })
        .collect();
    stragglers.sort_by_key(|s| (std::cmp::Reverse(s.compute_delta_us), s.stage));

    // Exported-stall ranking: trace-wide induced waiting per stage.
    let base_export = exported_stall(base, num_stages);
    let cand_export = exported_stall(cand, num_stages);
    let mut exporters: Vec<StallExport> = (0..num_stages)
        .map(|k| StallExport {
            stage: k as u32,
            base_us: base_export[k],
            cand_us: cand_export[k],
        })
        .collect();
    exporters.sort_by_key(|e| (std::cmp::Reverse(e.delta_us()), e.stage));

    // Dominant class: largest absolute delta, first-in-order on ties.
    let dominant = classes
        .iter()
        .max_by_key(|c| c.delta_us().unsigned_abs())
        .map(|c| c.class)
        .unwrap_or(AttrClass::Compute);
    let verdict = if dominant == AttrClass::Compute {
        "kernel"
    } else {
        "scheduling"
    };

    Diagnosis {
        base_total_us: bp.total_us,
        cand_total_us: cp.total_us,
        classes,
        stages,
        shifts,
        stragglers,
        exporters,
        dominant,
        verdict,
    }
}

/// One compared metric from a bench-check run, decoupled from
/// `crates/bench` so the CLI can feed check rows straight in.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Metric name (e.g. `matmul 256x256x256 tiled gflops`).
    pub metric: String,
    /// Baseline value from the tracked artifact.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
}

/// Explains a failed bench-check: which metrics regressed and whether
/// the regression is a kernel (compute) or a scheduling problem. A
/// throughput ("gflops" / "GF/s") metric regressing past the threshold
/// is direct kernel evidence — scheduling changes cannot slow an
/// isolated kernel benchmark — so any such row makes `compute` the
/// dominant delta; otherwise only schedule-level metrics (e.g.
/// `replay_subnets_per_s`, threaded makespan) moved and the verdict is
/// `scheduling`.
pub fn explain_bench_check(rows: &[BenchDelta], threshold: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "doctor: bench-check failure analysis");
    let mut kernel = false;
    let mut any = false;
    for row in rows {
        if row.baseline <= 0.0 {
            continue;
        }
        let ratio = row.fresh / row.baseline;
        if ratio < 1.0 - threshold {
            any = true;
            let lower = row.metric.to_ascii_lowercase();
            let is_kernel = lower.contains("gflops") || lower.contains("gf/s");
            kernel |= is_kernel;
            let _ = writeln!(
                out,
                "  {:<40} {:>10.2} -> {:>10.2} ({:.0}% of baseline, {})",
                row.metric,
                row.baseline,
                row.fresh,
                100.0 * ratio,
                if is_kernel {
                    "kernel metric"
                } else {
                    "schedule metric"
                }
            );
        }
    }
    if !any {
        let _ = writeln!(out, "  no metric regressed past the threshold");
    }
    let dominant = if kernel { "compute" } else { "scheduling" };
    let _ = writeln!(out, "dominant delta: {dominant}");
    if kernel {
        let _ = writeln!(
            out,
            "hint: an isolated kernel benchmark slowed down - profile the compute \
             backend (pool sizing, NASPIPE_THREADS, host load) before blaming the schedule"
        );
    } else if any {
        let _ = writeln!(
            out,
            "hint: kernels held steady but end-to-end throughput fell - capture traces \
             from both builds and run `naspipe doctor --base A --cand B`"
        );
    }
    out
}

/// Explains a failed replay-check: summarizes the gate's divergence
/// report and points at the doctor workflow for the trace-level diff.
pub fn explain_replay(report_text: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "doctor: replay-check failure analysis");
    let mut lines = 0;
    for line in report_text.lines() {
        let l = line.trim();
        if l.contains("FAIL") || l.contains("diverg") || l.contains("mismatch") {
            let _ = writeln!(out, "  {l}");
            lines += 1;
        }
    }
    if lines == 0 {
        let _ = writeln!(out, "  (no divergence lines found in the gate report)");
    }
    let _ = writeln!(
        out,
        "dominant delta: determinism (behavioral divergence, not throughput)"
    );
    let _ = writeln!(
        out,
        "hint: the first divergent task above names stage/subnet/kind - re-record with \
         `naspipe replay-check --bless` only if the behavior change is intended"
    );
    out
}

/// Scans every `"key":<number>` pair in a flat-ish hand-rolled JSON
/// artifact (e.g. `BENCH_compute.json`), in document order. Repeated
/// keys get `#2`, `#3`, ... suffixes so two structurally identical
/// artifacts pair up by position.
pub fn scan_numeric_fields(json: &str) -> Vec<(String, f64)> {
    let bytes = json.as_bytes();
    let mut out: Vec<(String, f64)> = Vec::new();
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let Some(close) = json[i + 1..].find('"') else {
            break;
        };
        let key = &json[i + 1..i + 1 + close];
        let mut j = i + 1 + close + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b':' {
            i = j;
            continue;
        }
        j += 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let start = j;
        while j < bytes.len()
            && (bytes[j].is_ascii_digit() || matches!(bytes[j], b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            j += 1;
        }
        if j > start {
            if let Ok(v) = json[start..j].parse::<f64>() {
                let n = counts.entry(key.to_string()).or_insert(0);
                *n += 1;
                let name = if *n == 1 {
                    key.to_string()
                } else {
                    format!("{key}#{n}")
                };
                out.push((name, v));
            }
        }
        i = j.max(i + 1);
    }
    out
}

/// Pairs two artifacts' numeric fields into [`BenchDelta`] rows (only
/// keys present in both survive).
pub fn bench_deltas(baseline_json: &str, fresh_json: &str) -> Vec<BenchDelta> {
    let base = scan_numeric_fields(baseline_json);
    let fresh: HashMap<String, f64> = scan_numeric_fields(fresh_json).into_iter().collect();
    base.into_iter()
        .filter_map(|(metric, baseline)| {
            fresh.get(&metric).map(|&f| BenchDelta {
                metric,
                baseline,
                fresh: f,
            })
        })
        .collect()
}

/// Counts `"kind":"..."` occurrences in a flight dump, in first-seen
/// order — the coarse event mix `doctor` reports per flight artifact.
pub fn flight_kind_counts(json: &str) -> Vec<(String, u64)> {
    let mut order: Vec<String> = Vec::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    let needle = "\"kind\":\"";
    let mut rest = json;
    while let Some(pos) = rest.find(needle) {
        rest = &rest[pos + needle.len()..];
        let Some(end) = rest.find('"') else {
            break;
        };
        let kind = &rest[..end];
        if !counts.contains_key(kind) {
            order.push(kind.to_string());
        }
        *counts.entry(kind.to_string()).or_insert(0) += 1;
        rest = &rest[end..];
    }
    order
        .into_iter()
        .map(|k| {
            let c = counts[&k];
            (k, c)
        })
        .collect()
}

/// Summarizes a structured journal (`--journal PATH` / `/events`
/// output) for `naspipe doctor`: per-(level, kind) event counts in
/// first-seen order, plus any schema violations found by the strict
/// parser. Unparseable lines surface as problems, not a hard error —
/// diagnosis works on whatever survived.
pub fn journal_summary(text: &str) -> (Vec<(String, u64)>, Vec<String>) {
    let problems = crate::journal::validate_journal(text);
    let mut order: Vec<String> = Vec::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    if let Ok(events) = crate::journal::parse_journal(text) {
        for e in &events {
            let key = format!("{} {}", e.level.name(), e.kind);
            if !counts.contains_key(&key) {
                order.push(key.clone());
            }
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    let rows = order
        .into_iter()
        .map(|k| {
            let c = counts[&k];
            (k, c)
        })
        .collect();
    (rows, problems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CauseKind, SpanDraft, SpanTracer, Tracer};

    /// Two-stage baseline: F0 [0,10]@P0, F0' [10,20]@P1.
    fn base_trace() -> SpanTrace {
        let mut t = SpanTracer::new();
        let f0 = t.emit(SpanDraft::new(0, SpanKind::Forward, 0, 10).subnet(0));
        t.emit(
            SpanDraft::new(1, SpanKind::Forward, 10, 20)
                .subnet(0)
                .caused_by(f0, CauseKind::ActivationArrival),
        );
        t.take()
    }

    /// Candidate: stage-0 compute doubled, downstream shifted.
    fn slow_kernel_trace() -> SpanTrace {
        let mut t = SpanTracer::new();
        let f0 = t.emit(SpanDraft::new(0, SpanKind::Forward, 0, 20).subnet(0));
        t.emit(
            SpanDraft::new(1, SpanKind::Forward, 20, 30)
                .subnet(0)
                .caused_by(f0, CauseKind::ActivationArrival),
        );
        t.take()
    }

    #[test]
    fn class_deltas_sum_to_makespan_delta_exactly() {
        let d = diagnose(&base_trace(), &slow_kernel_trace(), 5);
        assert_eq!(d.base_total_us, 20);
        assert_eq!(d.cand_total_us, 30);
        assert_eq!(d.makespan_delta_us(), 10);
        assert_eq!(d.class_delta_sum_us(), d.makespan_delta_us());
    }

    #[test]
    fn slow_kernel_is_attributed_to_compute() {
        let d = diagnose(&base_trace(), &slow_kernel_trace(), 5);
        assert_eq!(d.dominant, AttrClass::Compute);
        assert_eq!(d.verdict, "kernel");
        assert_eq!(d.stragglers[0].stage, 0);
        assert_eq!(d.stragglers[0].compute_delta_us, 10);
        // The shifted span is F0@P0, occurrence 0, 10 -> 20.
        assert_eq!(d.shifts.len(), 1);
        assert_eq!(d.shifts[0].stage, 0);
        assert_eq!(d.shifts[0].base_us, 10);
        assert_eq!(d.shifts[0].cand_us, 20);
    }

    #[test]
    fn grown_csp_gap_is_attributed_to_causal_stall() {
        // Baseline: writer ends 10, waiter starts 10 (no gap).
        let mut t = SpanTracer::new();
        let w = t.emit(SpanDraft::new(0, SpanKind::Forward, 0, 10).subnet(0));
        t.emit(
            SpanDraft::new(0, SpanKind::Forward, 10, 20)
                .subnet(1)
                .caused_by(w, CauseKind::CspWriterCompletion { writer: 0 }),
        );
        let base = t.take();
        // Candidate: same compute, 8us admission gap.
        let mut t = SpanTracer::new();
        let w = t.emit(SpanDraft::new(0, SpanKind::Forward, 0, 10).subnet(0));
        t.emit(
            SpanDraft::new(0, SpanKind::Forward, 18, 28)
                .subnet(1)
                .caused_by(w, CauseKind::CspWriterCompletion { writer: 0 }),
        );
        let cand = t.take();
        let d = diagnose(&base, &cand, 5);
        assert_eq!(d.makespan_delta_us(), 8);
        assert_eq!(d.class_delta_sum_us(), 8);
        assert_eq!(d.dominant, AttrClass::CausalStall);
        assert_eq!(d.verdict, "scheduling");
        assert_eq!(d.stages[0].causal_stall_us, 8);
    }

    #[test]
    fn json_rendering_carries_verdict_and_sums() {
        let d = diagnose(&base_trace(), &slow_kernel_trace(), 5);
        let json = d.to_json();
        assert!(json.starts_with("{\"base_total_us\":20,"));
        assert!(json.contains("\"verdict\":\"kernel\""));
        assert!(json.contains("\"dominant\":\"compute\""));
        assert!(json.contains("\"class\":\"causal-stall\""));
        let text = d.render_text();
        assert!(text.contains("dominant delta: compute"));
        assert!(text.contains("straggler ranking"));
    }

    #[test]
    fn explain_bench_check_flags_gflops_regression_as_compute() {
        let rows = vec![
            BenchDelta {
                metric: "matmul 256x256x256 tiled_gflops".into(),
                baseline: 47.0,
                fresh: 12.0,
            },
            BenchDelta {
                metric: "replay_subnets_per_s".into(),
                baseline: 100.0,
                fresh: 90.0,
            },
        ];
        let text = explain_bench_check(&rows, 0.15);
        assert!(text.contains("dominant delta: compute"), "{text}");
        assert!(text.contains("kernel metric"));
    }

    #[test]
    fn explain_bench_check_without_kernel_rows_is_scheduling() {
        let rows = vec![BenchDelta {
            metric: "replay_subnets_per_s".into(),
            baseline: 100.0,
            fresh: 50.0,
        }];
        let text = explain_bench_check(&rows, 0.15);
        assert!(text.contains("dominant delta: scheduling"), "{text}");
    }

    #[test]
    fn scan_numeric_fields_suffixes_repeats_and_pairs() {
        let a = "{\"x\":{\"gflops\":47.0},\"y\":{\"gflops\":30.0},\"n\":3}";
        let b = "{\"x\":{\"gflops\":40.0},\"y\":{\"gflops\":31.0},\"n\":3}";
        let fields = scan_numeric_fields(a);
        assert_eq!(
            fields,
            vec![
                ("gflops".to_string(), 47.0),
                ("gflops#2".to_string(), 30.0),
                ("n".to_string(), 3.0)
            ]
        );
        let deltas = bench_deltas(a, b);
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].fresh, 40.0);
        assert_eq!(deltas[1].metric, "gflops#2");
    }

    #[test]
    fn flight_kind_counts_tallies_in_first_seen_order() {
        let json = "{\"events\":[{\"kind\":\"admission\"},{\"kind\":\"csp-stall\"},\
                    {\"kind\":\"admission\"}]}";
        assert_eq!(
            flight_kind_counts(json),
            vec![("admission".to_string(), 2), ("csp-stall".to_string(), 1)]
        );
    }

    #[test]
    fn explain_replay_surfaces_divergence_lines() {
        let text = explain_replay("case a: FAIL first divergence at task 7\ncase b: ok");
        assert!(text.contains("FAIL first divergence at task 7"));
        assert!(text.contains("dominant delta: determinism"));
    }
}
