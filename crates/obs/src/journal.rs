//! Unified structured event journal: one bounded JSONL log for every
//! out-of-band notice the runtimes used to scatter across stderr.
//!
//! Before the journal, a run had three divergent side channels: the
//! sampler's [`status`](crate::status) progress line, watchdog trip
//! alerts, and the supervisor's `naspipe: ...` recovery/durable notices.
//! A [`Journal`] unifies them into one schema-versioned event stream
//! with levels and run-scoped fields, consumed three ways:
//!
//! * the ops plane's `GET /events` route streams the bounded ring
//!   ([`crate::ops`]),
//! * `--journal PATH` appends every event as one JSON line to a file,
//! * warn/error events are still mirrored to stderr (via
//!   [`status::alert`](crate::status::alert), so they interleave cleanly
//!   with the progress line) when mirroring is enabled.
//!
//! Emission is lock-light (one mutex around a bounded ring; events are
//! rare — checkpoint cuts, recovery transitions, watchdog trips — never
//! per-task) and has the same zero-effect-on-results guarantee as the
//! telemetry layer: the bitwise-equal run tests prove enabling it
//! changes nothing.
//!
//! The module also hosts the crate's hand-rolled JSON scanner
//! ([`JsonValue`] / [`parse_json`]): journal lines, the `/status`
//! document, and the CI validators all parse with it, keeping the whole
//! ops plane dependency-free.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Ring capacity when the configuration leaves it 0.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Schema version stamped into every line as `"v"`.
pub const JOURNAL_SCHEMA_VERSION: u64 = 1;

/// Event severity. `Info` is the normal lifecycle narration; `Warn` and
/// `Error` are mirrored to stderr when the journal mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JournalLevel {
    /// Lifecycle narration: run start/end, checkpoint cuts, persists.
    Info,
    /// Degraded but continuing: watchdog trips, failed persists, restarts.
    Warn,
    /// The run is failing: escalated faults, exhausted recovery.
    Error,
}

impl JournalLevel {
    /// Stable lowercase name used in the JSON schema.
    pub fn name(self) -> &'static str {
        match self {
            JournalLevel::Info => "info",
            JournalLevel::Warn => "warn",
            JournalLevel::Error => "error",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<JournalLevel> {
        match s {
            "info" => Some(JournalLevel::Info),
            "warn" => Some(JournalLevel::Warn),
            "error" => Some(JournalLevel::Error),
            _ => None,
        }
    }
}

/// One journal event. `seq` is assigned at emission and is strictly
/// increasing per journal, so consumers can detect gaps (ring drops)
/// and prove order preservation between `/events` and the sink file.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Emission sequence number (0-based, strictly increasing).
    pub seq: u64,
    /// Microseconds since run start (simulated or wall-clock).
    pub at_us: u64,
    /// Severity.
    pub level: JournalLevel,
    /// Stable kebab-case event kind, e.g. `checkpoint-cut`,
    /// `watchdog-trip`, `durable-resume`, `restart`, `run-end`.
    pub kind: String,
    /// Stage the event is charged to, when one is.
    pub stage: Option<u32>,
    /// Human-readable one-liner (what the stderr mirror prints).
    pub message: String,
    /// Kind-specific structured fields, in emission order.
    pub fields: Vec<(String, String)>,
}

impl JournalEvent {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.message.len());
        let _ = write!(
            out,
            "{{\"v\":{},\"seq\":{},\"at_us\":{},\"level\":\"{}\",\"kind\":\"{}\"",
            JOURNAL_SCHEMA_VERSION,
            self.seq,
            self.at_us,
            self.level.name(),
            escape_json(&self.kind),
        );
        if let Some(stage) = self.stage {
            let _ = write!(out, ",\"stage\":{stage}");
        }
        let _ = write!(out, ",\"msg\":\"{}\"", escape_json(&self.message));
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

struct Inner {
    ring: VecDeque<JournalEvent>,
    next_seq: u64,
    sink: Option<std::fs::File>,
    sink_failed: bool,
}

/// The bounded, structured event log. Emission appends to a ring (oldest
/// evicted and counted when full), optionally appends one JSON line to a
/// sink file, and optionally mirrors warn/error events to stderr.
pub struct Journal {
    inner: Mutex<Inner>,
    capacity: usize,
    dropped: AtomicU64,
    mirror: bool,
    sink_path: Option<PathBuf>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .field("mirror", &self.mirror)
            .field("sink", &self.sink_path)
            .finish()
    }
}

impl Journal {
    /// A journal retaining `capacity` events (0 means
    /// [`DEFAULT_JOURNAL_CAPACITY`]); no sink, no stderr mirror.
    pub fn new(capacity: usize) -> Self {
        let capacity = if capacity == 0 {
            DEFAULT_JOURNAL_CAPACITY
        } else {
            capacity
        };
        Journal {
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity.min(4096)),
                next_seq: 0,
                sink: None,
                sink_failed: false,
            }),
            capacity,
            dropped: AtomicU64::new(0),
            mirror: false,
            sink_path: None,
        }
    }

    /// Mirrors warn/error events to stderr as `naspipe: ...` alert lines
    /// (builder; call before sharing the journal).
    pub fn with_mirror(mut self) -> Self {
        self.mirror = true;
        self
    }

    /// Additionally appends every event as one JSON line to `path`
    /// (truncating; a journal file is one run's log).
    pub fn with_sink(mut self, path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        self.inner.get_mut().expect("journal lock poisoned").sink = Some(file);
        self.sink_path = Some(path.to_path_buf());
        Ok(self)
    }

    /// The sink file path, when one is attached.
    pub fn sink_path(&self) -> Option<&Path> {
        self.sink_path.as_deref()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Emits one event. Returns its sequence number.
    pub fn emit(
        &self,
        level: JournalLevel,
        kind: &str,
        stage: Option<u32>,
        at_us: u64,
        message: impl Into<String>,
        fields: Vec<(String, String)>,
    ) -> u64 {
        let event = {
            let mut inner = self.inner.lock().expect("journal lock poisoned");
            let event = JournalEvent {
                seq: inner.next_seq,
                at_us,
                level,
                kind: kind.to_string(),
                stage,
                message: message.into(),
                fields,
            };
            inner.next_seq += 1;
            if inner.ring.len() == self.capacity {
                inner.ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            inner.ring.push_back(event.clone());
            // Sink writes stay inside the lock so the file preserves
            // emission order; events are rare, so this is never hot.
            if !inner.sink_failed {
                if let Some(file) = inner.sink.as_mut() {
                    let line = event.to_json();
                    if writeln!(file, "{line}").and_then(|_| file.flush()).is_err() {
                        inner.sink_failed = true;
                    }
                }
            }
            event
        };
        if self.mirror && event.level >= JournalLevel::Warn {
            crate::status::alert(&format!("naspipe: {}", event.message));
        }
        event.seq
    }

    /// Copies the retained ring, oldest first.
    pub fn snapshot(&self) -> Vec<JournalEvent> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        inner.ring.iter().cloned().collect()
    }

    /// Retained events with `seq >= since` (for incremental `/events`
    /// consumers).
    pub fn events_since(&self, since: u64) -> Vec<JournalEvent> {
        let inner = self.inner.lock().expect("journal lock poisoned");
        inner
            .ring
            .iter()
            .filter(|e| e.seq >= since)
            .cloned()
            .collect()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events retained right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal lock poisoned").ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever emitted.
    pub fn emitted(&self) -> u64 {
        self.inner.lock().expect("journal lock poisoned").next_seq
    }
}

/// Parses one journal JSON line back into a [`JournalEvent`].
pub fn parse_event(line: &str) -> Result<JournalEvent, String> {
    let doc = parse_json(line)?;
    let v = doc
        .get("v")
        .and_then(JsonValue::as_u64)
        .ok_or("missing \"v\"")?;
    if v != JOURNAL_SCHEMA_VERSION {
        return Err(format!("unsupported journal schema v{v}"));
    }
    let field = |k: &str| doc.get(k).ok_or_else(|| format!("missing {k:?}"));
    let level_name = field("level")?.as_str().ok_or("\"level\" not a string")?;
    Ok(JournalEvent {
        seq: field("seq")?.as_u64().ok_or("\"seq\" not an integer")?,
        at_us: field("at_us")?.as_u64().ok_or("\"at_us\" not an integer")?,
        level: JournalLevel::parse(level_name)
            .ok_or_else(|| format!("unknown level {level_name:?}"))?,
        kind: field("kind")?
            .as_str()
            .ok_or("\"kind\" not a string")?
            .to_string(),
        stage: match doc.get("stage") {
            None => None,
            Some(s) => Some(s.as_u64().ok_or("\"stage\" not an integer")? as u32),
        },
        message: field("msg")?
            .as_str()
            .ok_or("\"msg\" not a string")?
            .to_string(),
        fields: match doc.get("fields") {
            None => Vec::new(),
            Some(JsonValue::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("field {k:?} not a string"))
                })
                .collect::<Result<_, _>>()?,
            Some(_) => return Err("\"fields\" not an object".into()),
        },
    })
}

/// Parses a whole journal (one JSON object per non-empty line).
pub fn parse_journal(text: &str) -> Result<Vec<JournalEvent>, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .enumerate()
        .map(|(i, line)| parse_event(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Validates a journal text: every line schema-valid, sequence strictly
/// increasing (order-preserving). Returns the list of problems (empty =
/// valid).
pub fn validate_journal(text: &str) -> Vec<String> {
    let events = match parse_journal(text) {
        Ok(ev) => ev,
        Err(e) => return vec![e],
    };
    let mut problems = Vec::new();
    for pair in events.windows(2) {
        if pair[1].seq <= pair[0].seq {
            problems.push(format!(
                "sequence not strictly increasing: {} then {}",
                pair[0].seq, pair[1].seq
            ));
        }
    }
    problems
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value — the crate's hand-rolled scanner, shared by the
/// journal, the `/status` document, and the CI validators. Object keys
/// keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (None for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Scanner {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at {}", p.pos));
    }
    Ok(value)
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return Err("invalid \\u escape".into()),
                            }
                            self.pos += 4;
                        }
                        _ => return Err("invalid escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_n(j: &Journal, n: u64) {
        for i in 0..n {
            j.emit(
                JournalLevel::Info,
                "checkpoint-cut",
                Some((i % 3) as u32),
                i * 100,
                format!("watermark {i}"),
                vec![("watermark".into(), i.to_string())],
            );
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let j = Journal::new(3);
        emit_n(&j, 5);
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.emitted(), 5);
        let seqs: Vec<u64> = j.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn zero_capacity_uses_default() {
        assert_eq!(Journal::new(0).capacity(), DEFAULT_JOURNAL_CAPACITY);
    }

    #[test]
    fn events_round_trip_through_json() {
        let j = Journal::new(8);
        j.emit(
            JournalLevel::Warn,
            "watchdog-trip",
            Some(2),
            1234,
            "watchdog: straggler on stage 2 at 1234us (busy \"x\")",
            vec![("verdict".into(), "straggler".into())],
        );
        j.emit(
            JournalLevel::Error,
            "run-failed",
            None,
            9999,
            "boom\nline2",
            vec![],
        );
        for e in j.snapshot() {
            let parsed = parse_event(&e.to_json()).expect("line parses");
            assert_eq!(parsed, e);
        }
    }

    #[test]
    fn sink_file_matches_snapshot_and_validates() {
        let path =
            std::env::temp_dir().join(format!("naspipe-journal-test-{}.jsonl", std::process::id()));
        let j = Journal::new(16).with_sink(&path).expect("sink opens");
        emit_n(&j, 4);
        let text = std::fs::read_to_string(&path).expect("sink readable");
        assert!(validate_journal(&text).is_empty(), "sink file valid");
        let from_file = parse_journal(&text).unwrap();
        assert_eq!(from_file, j.snapshot(), "file replays the ring exactly");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn events_since_filters_by_sequence() {
        let j = Journal::new(8);
        emit_n(&j, 5);
        let tail = j.events_since(3);
        assert_eq!(tail.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn validate_flags_out_of_order_sequences() {
        let a = JournalEvent {
            seq: 4,
            at_us: 0,
            level: JournalLevel::Info,
            kind: "x".into(),
            stage: None,
            message: "m".into(),
            fields: vec![],
        };
        let b = JournalEvent {
            seq: 2,
            ..a.clone()
        };
        let text = format!("{}\n{}\n", a.to_json(), b.to_json());
        let problems = validate_journal(&text);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("strictly increasing"));
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        assert!(parse_event("{\"v\":2,\"seq\":0}").is_err());
        assert!(parse_event("not json").is_err());
        assert!(parse_event(
            "{\"v\":1,\"seq\":0,\"at_us\":1,\"level\":\"loud\",\"kind\":\"k\",\"msg\":\"m\"}"
        )
        .is_err());
    }

    #[test]
    fn json_scanner_handles_nesting_numbers_and_escapes() {
        let doc = parse_json(
            "{\"a\": [1, 2.5, -3], \"b\": {\"c\": \"x\\ny\", \"d\": true, \"e\": null}}",
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
        assert_eq!(
            doc.get("b").unwrap().get("d").unwrap().as_bool(),
            Some(true)
        );
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
    }
}
