//! Progress watchdog: stall, straggler, and CSP-convoy detectors over
//! the telemetry snapshot stream.
//!
//! A [`Watchdog`] consumes the same [`MetricsSnapshot`]s the live
//! telemetry ring publishes and emits typed [`WatchdogVerdict`]s. It is
//! a pure function of the snapshot sequence, which splits determinism
//! cleanly between the engines: the DES feeds it snapshots taken at
//! simulated-time crossings, so every verdict (including its `at_us`)
//! is bitwise reproducible across hosts and `NASPIPE_THREADS`; the
//! threaded runtime feeds it wall-clock sampler snapshots, so verdicts
//! there are advisory (timing-dependent) but still side-effect-free —
//! tripping never alters scheduling, only reporting and flight dumps.
//!
//! Every detector latches: one verdict per (kind, stage) per run, so a
//! persistent condition cannot flood the report.

use crate::metrics::{Counter, Sample};
use crate::telemetry::MetricsSnapshot;
use std::fmt::Write as _;

/// Detector thresholds. The defaults are intentionally conservative —
/// a clean uniform run must stay at zero trips across the seed matrix
/// (enforced by `core`'s watchdog determinism tests).
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// Stage-stall deadline: a stage with stall time accruing but no
    /// task completing for this long trips `StageStall`.
    pub stall_deadline_us: u64,
    /// Straggler trip ratio: a stage whose cumulative busy time reaches
    /// this multiple of the peer median trips `Straggler`.
    pub straggler_ratio: f64,
    /// Minimum absolute busy-time excess (us) over the peer median
    /// before `Straggler` can trip, so tiny warm-up skews don't fire.
    pub straggler_min_busy_us: u64,
    /// Minimum window between two snapshots for the convoy detector to
    /// evaluate (rates over shorter windows are too noisy).
    pub convoy_min_window_us: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_deadline_us: 5_000_000,
            straggler_ratio: 4.0,
            straggler_min_busy_us: 100_000,
            convoy_min_window_us: 1_000_000,
        }
    }
}

/// Which detector fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WatchdogVerdictKind {
    /// A stage accrued stall time without completing a task past the
    /// deadline.
    StageStall,
    /// A stage's busy time is an outlier versus its peers.
    Straggler,
    /// Multiple stages sat fully stalled while one stage kept
    /// progressing — the CSP admission watermark convoying behind one
    /// hot shared layer.
    CspConvoy,
}

/// Number of verdict kinds; sizes the trip-counter arrays.
pub const NUM_WATCHDOG_KINDS: usize = WatchdogVerdictKind::CspConvoy as usize + 1;

impl WatchdogVerdictKind {
    /// Every variant in declaration (= index) order.
    pub const ALL: [WatchdogVerdictKind; NUM_WATCHDOG_KINDS] = [
        WatchdogVerdictKind::StageStall,
        WatchdogVerdictKind::Straggler,
        WatchdogVerdictKind::CspConvoy,
    ];

    /// Stable kebab-case name used in JSON and the Prometheus family.
    pub fn name(self) -> &'static str {
        match self {
            WatchdogVerdictKind::StageStall => "stage-stall",
            WatchdogVerdictKind::Straggler => "straggler",
            WatchdogVerdictKind::CspConvoy => "csp-convoy",
        }
    }
}

/// One latched detector trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogVerdict {
    /// When the detector latched (us since run start; simulated time in
    /// the DES, wall-clock in the threaded runtime).
    pub at_us: u64,
    /// Which detector.
    pub kind: WatchdogVerdictKind,
    /// The stage charged: the stalled stage, the straggling stage, or —
    /// for a convoy — the hot stage everyone else is stuck behind.
    pub stage: u32,
    /// Human-readable evidence, e.g. `busy 840000us vs peer median
    /// 120000us`.
    pub detail: String,
}

impl WatchdogVerdict {
    /// One-line rendering for alerts and the text report.
    pub fn render(&self) -> String {
        format!(
            "watchdog: {} on stage {} at {}us ({})",
            self.kind.name(),
            self.stage,
            self.at_us,
            self.detail
        )
    }

    /// The structured fields a journal `watchdog-trip` event carries.
    pub fn journal_fields(&self) -> Vec<(String, String)> {
        vec![
            ("verdict".to_string(), self.kind.name().to_string()),
            ("detail".to_string(), self.detail.clone()),
        ]
    }
}

#[derive(Clone)]
struct StageState {
    tasks: u64,
    stall: u64,
    /// Snapshot time when `tasks` last advanced.
    progressed_at: u64,
    /// Stall total at that moment.
    stall_at_progress: u64,
}

/// The detector state machine. Feed it every published snapshot via
/// [`observe`](Watchdog::observe); returned verdicts are newly latched.
#[derive(Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    stages: Vec<StageState>,
    prev_at_us: Option<u64>,
    latched: Vec<[bool; NUM_WATCHDOG_KINDS]>,
    convoy_latched: bool,
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("stages", &self.stages.len())
            .finish()
    }
}

/// Cumulative busy-time proxy: forward + backward latency histogram
/// sums. Deterministic in the DES (simulated durations), measured in
/// the threaded runtime.
fn busy_us(snap: &MetricsSnapshot, stage: usize) -> u64 {
    let s = &snap.stages[stage];
    s.hist(Sample::ForwardLatencyUs).sum + s.hist(Sample::BackwardLatencyUs).sum
}

/// Lower median of `values` (deterministic; no float averaging).
fn median(values: &mut [u64]) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    values[(values.len() - 1) / 2]
}

impl Watchdog {
    /// A watchdog for `num_stages` stages.
    pub fn new(num_stages: usize, config: WatchdogConfig) -> Self {
        Watchdog {
            config,
            stages: vec![
                StageState {
                    tasks: 0,
                    stall: 0,
                    progressed_at: 0,
                    stall_at_progress: 0,
                };
                num_stages
            ],
            prev_at_us: None,
            latched: vec![[false; NUM_WATCHDOG_KINDS]; num_stages],
            convoy_latched: false,
        }
    }

    /// Runs every detector against `snap`, returning verdicts that
    /// latched on this observation. Pure: same snapshot sequence, same
    /// verdicts.
    pub fn observe(&mut self, snap: &MetricsSnapshot) -> Vec<WatchdogVerdict> {
        let n = self.stages.len().min(snap.stages.len());
        let at = snap.at_us;
        let mut verdicts = Vec::new();

        let mut tasks = vec![0u64; n];
        let mut stall = vec![0u64; n];
        let mut busy = vec![0u64; n];
        for k in 0..n {
            let s = &snap.stages[k];
            tasks[k] = s.counter(Counter::ForwardTask) + s.counter(Counter::BackwardTask);
            stall[k] = s.counter(Counter::StallUs);
            busy[k] = busy_us(snap, k);
        }

        // Straggler: cumulative busy time an outlier vs the peer median.
        for k in 0..n {
            if self.latched[k][WatchdogVerdictKind::Straggler as usize] {
                continue;
            }
            let mut peers: Vec<u64> = (0..n).filter(|&j| j != k).map(|j| busy[j]).collect();
            let med = median(&mut peers);
            let trip = busy[k] >= self.config.straggler_min_busy_us.saturating_add(med)
                && (busy[k] as f64) >= self.config.straggler_ratio * (med as f64);
            if trip && n > 1 {
                self.latched[k][WatchdogVerdictKind::Straggler as usize] = true;
                verdicts.push(WatchdogVerdict {
                    at_us: at,
                    kind: WatchdogVerdictKind::Straggler,
                    stage: k as u32,
                    detail: format!("busy {}us vs peer median {}us", busy[k], med),
                });
            }
        }

        // CSP convoy: over a wide-enough window, >=2 stages made no task
        // progress while stalled for (almost) the whole window, and at
        // least one stage did progress — everyone queued behind it.
        if let Some(prev_at) = self.prev_at_us {
            let dt = at.saturating_sub(prev_at);
            if !self.convoy_latched && dt >= self.config.convoy_min_window_us && n > 2 {
                let mut convoyed = 0usize;
                let mut hot: Option<(usize, u64)> = None;
                for k in 0..n {
                    let dtasks = tasks[k] - self.stages[k].tasks;
                    let dstall = stall[k] - self.stages[k].stall;
                    if dtasks == 0 && dstall * 10 >= dt * 9 {
                        convoyed += 1;
                    } else if dtasks > 0 && hot.map(|(_, best)| dtasks > best).unwrap_or(true) {
                        hot = Some((k, dtasks));
                    }
                }
                if convoyed >= 2 {
                    if let Some((hot_stage, dtasks)) = hot {
                        self.convoy_latched = true;
                        verdicts.push(WatchdogVerdict {
                            at_us: at,
                            kind: WatchdogVerdictKind::CspConvoy,
                            stage: hot_stage as u32,
                            detail: format!(
                                "{convoyed} stages fully stalled for {dt}us behind \
                                 stage {hot_stage} ({dtasks} tasks)"
                            ),
                        });
                    }
                }
            }
        }

        // Stage stall: stall time accruing with no task completion past
        // the deadline. Requiring the stall counter to advance keeps
        // end-of-run bubbles (drained stages) from tripping it.
        for k in 0..n {
            if tasks[k] > self.stages[k].tasks {
                self.stages[k].progressed_at = at;
                self.stages[k].stall_at_progress = stall[k];
            } else if !self.latched[k][WatchdogVerdictKind::StageStall as usize] {
                let idle_for = at.saturating_sub(self.stages[k].progressed_at);
                let stalled_since = stall[k] > self.stages[k].stall_at_progress;
                if idle_for >= self.config.stall_deadline_us && stalled_since {
                    self.latched[k][WatchdogVerdictKind::StageStall as usize] = true;
                    verdicts.push(WatchdogVerdict {
                        at_us: at,
                        kind: WatchdogVerdictKind::StageStall,
                        stage: k as u32,
                        detail: format!(
                            "no task completed for {idle_for}us with {}us stall accrued",
                            stall[k] - self.stages[k].stall_at_progress
                        ),
                    });
                }
            }
            self.stages[k].tasks = tasks[k];
            self.stages[k].stall = stall[k];
        }
        self.prev_at_us = Some(at);
        verdicts
    }
}

/// Renders verdicts as the one-line-each block the text report embeds.
pub fn render_verdicts(verdicts: &[WatchdogVerdict]) -> String {
    let mut out = String::new();
    for v in verdicts {
        let _ = writeln!(out, "{}", v.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricsRecorder, Recorder};

    fn snap_at(rec: &MetricsRecorder, at_us: u64) -> MetricsSnapshot {
        MetricsSnapshot::from_recorder(rec, at_us, 0)
    }

    #[test]
    fn uniform_run_never_trips() {
        let mut wd = Watchdog::new(4, WatchdogConfig::default());
        let mut rec = MetricsRecorder::new();
        for step in 1..=20u64 {
            for k in 0..4u32 {
                rec.incr(k, Counter::ForwardTask, 1);
                rec.sample(k, Sample::ForwardLatencyUs, 10_000);
            }
            assert!(wd.observe(&snap_at(&rec, step * 100_000)).is_empty());
        }
    }

    #[test]
    fn straggler_latches_once_on_outlier_busy_time() {
        let mut wd = Watchdog::new(4, WatchdogConfig::default());
        let mut rec = MetricsRecorder::new();
        for k in 0..4u32 {
            rec.incr(k, Counter::ForwardTask, 1);
            rec.sample(k, Sample::ForwardLatencyUs, 50_000);
        }
        assert!(wd.observe(&snap_at(&rec, 100_000)).is_empty());
        // Stage 2 accrues 10x the busy time of its peers.
        rec.sample(2, Sample::ForwardLatencyUs, 500_000);
        let v = wd.observe(&snap_at(&rec, 200_000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, WatchdogVerdictKind::Straggler);
        assert_eq!(v[0].stage, 2);
        assert_eq!(v[0].at_us, 200_000);
        // Latched: the same condition does not re-trip.
        assert!(wd.observe(&snap_at(&rec, 300_000)).is_empty());
    }

    #[test]
    fn straggler_needs_absolute_excess_not_just_ratio() {
        // 40us vs 5us peers is an 8x ratio but far below the 100ms
        // absolute floor — warm-up noise, not a straggler.
        let mut wd = Watchdog::new(3, WatchdogConfig::default());
        let mut rec = MetricsRecorder::new();
        rec.sample(0, Sample::ForwardLatencyUs, 40);
        rec.sample(1, Sample::ForwardLatencyUs, 5);
        rec.sample(2, Sample::ForwardLatencyUs, 5);
        assert!(wd.observe(&snap_at(&rec, 1_000_000)).is_empty());
    }

    #[test]
    fn stage_stall_needs_deadline_and_stall_accrual() {
        let cfg = WatchdogConfig {
            stall_deadline_us: 1_000_000,
            ..WatchdogConfig::default()
        };
        let mut wd = Watchdog::new(2, cfg);
        let mut rec = MetricsRecorder::new();
        rec.incr(0, Counter::ForwardTask, 1);
        rec.incr(1, Counter::ForwardTask, 1);
        assert!(wd.observe(&snap_at(&rec, 100_000)).is_empty());
        // Stage 1 stalls (blocked, not bubbled) with no completions.
        rec.incr(1, Counter::StallUs, 2_000_000);
        rec.incr(0, Counter::ForwardTask, 5);
        let v = wd.observe(&snap_at(&rec, 2_100_000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, WatchdogVerdictKind::StageStall);
        assert_eq!(v[0].stage, 1);
        // Bubble-only idling (no stall accrual) never trips.
        let mut wd2 = Watchdog::new(2, WatchdogConfig::default());
        let mut rec2 = MetricsRecorder::new();
        rec2.incr(0, Counter::ForwardTask, 1);
        rec2.incr(1, Counter::ForwardTask, 1);
        wd2.observe(&snap_at(&rec2, 100_000));
        rec2.incr(1, Counter::BubbleUs, 20_000_000);
        assert!(wd2.observe(&snap_at(&rec2, 20_000_000)).is_empty());
    }

    #[test]
    fn convoy_trips_when_peers_fully_stall_behind_one_hot_stage() {
        let mut wd = Watchdog::new(4, WatchdogConfig::default());
        let mut rec = MetricsRecorder::new();
        for k in 0..4u32 {
            rec.incr(k, Counter::ForwardTask, 2);
        }
        assert!(wd.observe(&snap_at(&rec, 1_000_000)).is_empty());
        // Over the next 2s window: stage 1 completes 6 tasks, stages
        // 0/2/3 complete nothing and stall the whole window.
        rec.incr(1, Counter::ForwardTask, 6);
        for k in [0u32, 2, 3] {
            rec.incr(k, Counter::StallUs, 2_000_000);
        }
        let v = wd.observe(&snap_at(&rec, 3_000_000));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, WatchdogVerdictKind::CspConvoy);
        assert_eq!(v[0].stage, 1, "charged to the hot stage");
        assert!(wd.observe(&snap_at(&rec, 5_000_000)).is_empty(), "latched");
    }

    #[test]
    fn observe_is_deterministic_for_equal_snapshot_sequences() {
        let mut rec = MetricsRecorder::new();
        for k in 0..3u32 {
            rec.incr(k, Counter::ForwardTask, 1);
            rec.sample(k, Sample::ForwardLatencyUs, 20_000);
        }
        rec.sample(0, Sample::ForwardLatencyUs, 900_000);
        let mut a = Watchdog::new(3, WatchdogConfig::default());
        let mut b = Watchdog::new(3, WatchdogConfig::default());
        let snaps = [snap_at(&rec, 100_000), snap_at(&rec, 200_000)];
        let va: Vec<_> = snaps.iter().flat_map(|s| a.observe(s)).collect();
        let vb: Vec<_> = snaps.iter().flat_map(|s| b.observe(s)).collect();
        assert_eq!(va, vb);
        assert!(!va.is_empty());
    }

    #[test]
    fn verdict_render_names_kind_stage_and_time() {
        let v = WatchdogVerdict {
            at_us: 42,
            kind: WatchdogVerdictKind::CspConvoy,
            stage: 3,
            detail: "x".into(),
        };
        let line = v.render();
        assert!(line.contains("csp-convoy"));
        assert!(line.contains("stage 3"));
        assert!(line.contains("42us"));
    }
}
