//! Per-task span tracing with causal edges.
//!
//! Where [`crate::metrics`] aggregates (counters and histograms), this
//! module records *timelines*: one [`Span`] per unit of runtime work —
//! forward/backward execution, parameter fetch/prefetch, eviction,
//! activation recomputation, checkpoint, restart, replay — each carrying
//! the stage it ran on, the subnet it belongs to, and a **causal edge**
//! naming *why it started when it did*: the predecessor stage's
//! activation arrival, a shared-layer writer's backward completion (the
//! CSP admission rule firing), a cache fetch completing, or a recovery
//! replay.
//!
//! Emission mirrors the [`Recorder`](crate::Recorder) pattern: runtimes
//! talk to a [`Tracer`] ([`SpanTracer`] buffers in memory, [`NullTracer`]
//! drops everything at zero cost); per-worker tracers from the threaded
//! runtime get distinct id namespaces and their buffers merge into one
//! [`SpanTrace`] after join. Two consumers sit downstream: the Chrome
//! trace-event exporter ([`crate::chrome`], loadable in Perfetto) and the
//! critical-path analyzer ([`crate::critical_path`]).

use std::fmt;

/// Identifier of one span, unique within a [`SpanTrace`].
///
/// `SpanId(0)` is the reserved *external* id: [`NullTracer`] returns it
/// for every emission, and causal edges with `src == SpanId(0)` point
/// outside the trace (e.g. the initial injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved id for events outside the trace.
    pub const EXTERNAL: SpanId = SpanId(0);

    /// Whether this id points outside the trace.
    pub fn is_external(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// What kind of work a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A forward task executing on a stage.
    Forward,
    /// A backward task executing on a stage.
    Backward,
    /// Hoisted activation recomputation ahead of the backward wave.
    Recompute,
    /// A synchronous parameter fetch (cache miss) over PCIe.
    Fetch,
    /// An asynchronous parameter prefetch over PCIe.
    Prefetch,
    /// A layer eviction GPU -> CPU (instantaneous).
    Evict,
    /// A stage snapshotting its state at a CSP watermark.
    Checkpoint,
    /// The supervisor respawning a stage after a failure.
    Restart,
    /// A task re-executed because a rollback discarded its effect.
    Replay,
}

impl SpanKind {
    /// Short lowercase name, stable across export/parse.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Forward => "forward",
            SpanKind::Backward => "backward",
            SpanKind::Recompute => "recompute",
            SpanKind::Fetch => "fetch",
            SpanKind::Prefetch => "prefetch",
            SpanKind::Evict => "evict",
            SpanKind::Checkpoint => "checkpoint",
            SpanKind::Restart => "restart",
            SpanKind::Replay => "replay",
        }
    }

    /// Parses [`name`](Self::name) back.
    pub fn from_name(name: &str) -> Option<SpanKind> {
        Some(match name {
            "forward" => SpanKind::Forward,
            "backward" => SpanKind::Backward,
            "recompute" => SpanKind::Recompute,
            "fetch" => SpanKind::Fetch,
            "prefetch" => SpanKind::Prefetch,
            "evict" => SpanKind::Evict,
            "checkpoint" => SpanKind::Checkpoint,
            "restart" => SpanKind::Restart,
            "replay" => SpanKind::Replay,
            _ => return None,
        })
    }

    /// Whether spans of this kind occupy the stage's compute resource
    /// (and therefore serialize on it). Fetch/prefetch occupy the PCIe
    /// link; evict/checkpoint/restart are bookkeeping marks.
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            SpanKind::Forward | SpanKind::Backward | SpanKind::Recompute | SpanKind::Replay
        )
    }
}

impl fmt::Display for SpanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a span started when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CauseKind {
    /// First-stage forward: the subnet was injected into the pipeline.
    Injection,
    /// The predecessor stage's forward output (activation) arrived.
    ActivationArrival,
    /// The successor stage's backward output (gradient) arrived.
    GradientArrival,
    /// The CSP admission rule released this forward: the named earlier
    /// subnet — the last unfinished sharer of a layer this task touches —
    /// completed its backward write.
    CspWriterCompletion {
        /// Sequence id of the earlier subnet whose write released us.
        writer: u64,
    },
    /// A synchronous cache fetch (or pending prefetch) completed.
    FetchCompletion,
    /// The task re-ran because a recovery rolled its effect back.
    RecoveryReplay {
        /// Which pipeline incarnation replays it (1 = first restart).
        incarnation: u32,
    },
}

impl CauseKind {
    /// Short kebab-case name, stable across export/parse.
    pub fn name(self) -> &'static str {
        match self {
            CauseKind::Injection => "injection",
            CauseKind::ActivationArrival => "activation-arrival",
            CauseKind::GradientArrival => "gradient-arrival",
            CauseKind::CspWriterCompletion { .. } => "csp-writer-completion",
            CauseKind::FetchCompletion => "fetch-completion",
            CauseKind::RecoveryReplay { .. } => "recovery-replay",
        }
    }
}

impl fmt::Display for CauseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CauseKind::CspWriterCompletion { writer } => {
                write!(f, "csp-writer-completion(SN{writer})")
            }
            CauseKind::RecoveryReplay { incarnation } => {
                write!(f, "recovery-replay(incarnation {incarnation})")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// A causal edge: the span (and reason) that released this one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CausalEdge {
    /// The releasing span ([`SpanId::EXTERNAL`] when outside the trace).
    pub src: SpanId,
    /// Why the edge exists.
    pub kind: CauseKind,
}

/// One traced unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique id within the trace.
    pub id: SpanId,
    /// Pipeline stage the work ran on.
    pub stage: u32,
    /// What the work was.
    pub kind: SpanKind,
    /// The subnet it belongs to (`None` for e.g. evictions).
    pub subnet: Option<u64>,
    /// Start, in microseconds (simulated or wall-clock since run start).
    pub start_us: u64,
    /// End, in microseconds; `end_us == start_us` marks an instant.
    pub end_us: u64,
    /// Why the span started when it did, if known.
    pub cause: Option<CausalEdge>,
}

impl Span {
    /// Duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Human label, e.g. `SN3.forward@P1`.
    pub fn label(&self) -> String {
        match self.subnet {
            Some(s) => format!("SN{s}.{}@P{}", self.kind, self.stage),
            None => format!("{}@P{}", self.kind, self.stage),
        }
    }
}

/// A span minus its id — what emission sites build; the tracer assigns
/// the id (so causal edges can reference earlier emissions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanDraft {
    /// Pipeline stage the work ran on.
    pub stage: u32,
    /// What the work was.
    pub kind: SpanKind,
    /// The subnet it belongs to.
    pub subnet: Option<u64>,
    /// Start microseconds.
    pub start_us: u64,
    /// End microseconds.
    pub end_us: u64,
    /// Why the span started when it did.
    pub cause: Option<CausalEdge>,
}

impl SpanDraft {
    /// A draft covering `[start_us, end_us]` of `kind` work on `stage`.
    pub fn new(stage: u32, kind: SpanKind, start_us: u64, end_us: u64) -> Self {
        SpanDraft {
            stage,
            kind,
            subnet: None,
            start_us,
            end_us,
            cause: None,
        }
    }

    /// Attaches the subnet.
    pub fn subnet(mut self, subnet: u64) -> Self {
        self.subnet = Some(subnet);
        self
    }

    /// Attaches the causal edge.
    pub fn caused_by(mut self, src: SpanId, kind: CauseKind) -> Self {
        self.cause = Some(CausalEdge { src, kind });
        self
    }
}

/// Sink for spans. Mirrors [`Recorder`](crate::Recorder): emission sites
/// stay compiled against the trait, and tests or benchmark paths
/// substitute [`NullTracer`] to prove tracing never perturbs a run.
pub trait Tracer: Send {
    /// Records one span and returns its assigned id (so later spans can
    /// name it in a causal edge). [`NullTracer`] returns
    /// [`SpanId::EXTERNAL`].
    fn emit(&mut self, draft: SpanDraft) -> SpanId;

    /// Whether emissions are recorded (`false` lets hot paths skip
    /// building drafts).
    fn enabled(&self) -> bool {
        true
    }

    /// Takes the buffered spans, leaving the tracer empty.
    fn take(&mut self) -> SpanTrace {
        SpanTrace::default()
    }
}

/// A tracer that drops everything at zero cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn emit(&mut self, _draft: SpanDraft) -> SpanId {
        SpanId::EXTERNAL
    }

    fn enabled(&self) -> bool {
        false
    }
}

/// Bits reserved for the per-emission counter within a [`SpanTracer`]
/// id; the namespace occupies the bits above.
const NAMESPACE_SHIFT: u32 = 40;

/// The in-memory [`Tracer`]: an append-only span buffer.
///
/// The threaded runtime gives each stage worker its own tracer under a
/// distinct *namespace* so ids never collide across workers, then merges
/// the buffers after join — recording never contends on a lock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTracer {
    namespace: u64,
    next: u64,
    spans: Vec<Span>,
}

impl SpanTracer {
    /// A tracer in namespace 0 (ids 1, 2, 3, ...).
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracer whose ids live in `namespace` (`namespace << 40 | seq`,
    /// never colliding with another namespace's ids).
    pub fn with_namespace(namespace: u64) -> Self {
        SpanTracer {
            namespace,
            next: 0,
            spans: Vec::new(),
        }
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

impl Tracer for SpanTracer {
    fn emit(&mut self, draft: SpanDraft) -> SpanId {
        self.next += 1;
        let id = SpanId((self.namespace << NAMESPACE_SHIFT) | self.next);
        self.spans.push(Span {
            id,
            stage: draft.stage,
            kind: draft.kind,
            subnet: draft.subnet,
            start_us: draft.start_us,
            end_us: draft.end_us,
            cause: draft.cause,
        });
        id
    }

    fn take(&mut self) -> SpanTrace {
        let mut trace = SpanTrace {
            spans: std::mem::take(&mut self.spans),
        };
        trace.normalize();
        trace
    }
}

/// An immutable, time-ordered collection of spans — the unit the
/// exporter and analyzer consume.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTrace {
    spans: Vec<Span>,
}

impl SpanTrace {
    /// Builds a trace from raw spans (sorting them into canonical
    /// `(start, id)` order).
    pub fn from_spans(spans: Vec<Span>) -> Self {
        let mut trace = SpanTrace { spans };
        trace.normalize();
        trace
    }

    fn normalize(&mut self) {
        self.spans.sort_by_key(|s| (s.start_us, s.end_us, s.id));
    }

    /// All spans in `(start, end, id)` order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The span with `id`, if present.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Spans of one kind, in time order.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Spans on one stage, in time order.
    pub fn on_stage(&self, stage: u32) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.stage == stage)
    }

    /// Number of stages spanned (max stage index + 1; 0 when empty).
    pub fn num_stages(&self) -> u32 {
        self.spans.iter().map(|s| s.stage + 1).max().unwrap_or(0)
    }

    /// Latest end over the *compute* spans — the schedule makespan. The
    /// trailing edge of an async prefetch does not extend a run.
    pub fn makespan_us(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind.is_compute())
            .map(|s| s.end_us)
            .max()
            .unwrap_or(0)
    }

    /// Folds `other`'s spans into `self` (per-worker buffer merge).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the two traces share a span id — merge
    /// only tracers created under distinct namespaces.
    pub fn merge(&mut self, other: SpanTrace) {
        #[cfg(debug_assertions)]
        {
            use std::collections::BTreeSet;
            let mine: BTreeSet<SpanId> = self.spans.iter().map(|s| s.id).collect();
            for s in &other.spans {
                debug_assert!(!mine.contains(&s.id), "span id {} collides in merge", s.id);
            }
        }
        self.spans.extend(other.spans);
        self.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_assigns_sequential_ids_and_take_sorts() {
        let mut t = SpanTracer::new();
        let a = t.emit(SpanDraft::new(0, SpanKind::Forward, 10, 20).subnet(0));
        let b = t.emit(
            SpanDraft::new(1, SpanKind::Forward, 0, 5)
                .subnet(0)
                .caused_by(a, CauseKind::ActivationArrival),
        );
        assert_eq!(a, SpanId(1));
        assert_eq!(b, SpanId(2));
        let trace = t.take();
        assert_eq!(trace.len(), 2);
        // Sorted by start time, not emission order.
        assert_eq!(trace.spans()[0].id, b);
        assert_eq!(trace.get(a).unwrap().end_us, 20);
        assert!(t.is_empty(), "take drains the buffer");
    }

    #[test]
    fn null_tracer_returns_external() {
        let mut t = NullTracer;
        assert!(!t.enabled());
        let id = t.emit(SpanDraft::new(0, SpanKind::Forward, 0, 1));
        assert!(id.is_external());
        assert!(t.take().is_empty());
    }

    #[test]
    fn namespaces_do_not_collide_and_merge_interleaves() {
        let mut a = SpanTracer::with_namespace(1);
        let mut b = SpanTracer::with_namespace(2);
        let ia = a.emit(SpanDraft::new(0, SpanKind::Forward, 5, 9));
        let ib = b.emit(SpanDraft::new(1, SpanKind::Backward, 0, 4));
        assert_ne!(ia, ib);
        let mut trace = a.take();
        trace.merge(b.take());
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.spans()[0].id, ib, "merged trace re-sorts by start");
        assert_eq!(trace.num_stages(), 2);
    }

    #[test]
    fn makespan_ignores_io_tails() {
        let trace = SpanTrace::from_spans(vec![
            Span {
                id: SpanId(1),
                stage: 0,
                kind: SpanKind::Forward,
                subnet: Some(0),
                start_us: 0,
                end_us: 10,
                cause: None,
            },
            Span {
                id: SpanId(2),
                stage: 0,
                kind: SpanKind::Prefetch,
                subnet: Some(1),
                start_us: 5,
                end_us: 50,
                cause: None,
            },
        ]);
        assert_eq!(trace.makespan_us(), 10);
    }

    #[test]
    fn labels_and_names_round_trip() {
        for kind in [
            SpanKind::Forward,
            SpanKind::Backward,
            SpanKind::Recompute,
            SpanKind::Fetch,
            SpanKind::Prefetch,
            SpanKind::Evict,
            SpanKind::Checkpoint,
            SpanKind::Restart,
            SpanKind::Replay,
        ] {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("nonsense"), None);
        let span = Span {
            id: SpanId(3),
            stage: 2,
            kind: SpanKind::Backward,
            subnet: Some(7),
            start_us: 0,
            end_us: 1,
            cause: None,
        };
        assert_eq!(span.label(), "SN7.backward@P2");
        assert_eq!(
            CauseKind::CspWriterCompletion { writer: 4 }.to_string(),
            "csp-writer-completion(SN4)"
        );
    }
}
