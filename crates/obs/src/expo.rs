//! Prometheus text exposition (format 0.0.4) for the live telemetry.
//!
//! Three pieces, all dependency-free:
//!
//! * [`render_exposition`] turns the latest [`TelemetryHub`] snapshot
//!   pair into exposition text — monotonic counters straight from the
//!   snapshot, rate/utilisation gauges derived from the last interval,
//!   and the log2 histograms re-expressed as cumulative `le` buckets.
//! * [`validate_exposition`] / [`counter_values`] parse the text back:
//!   the `repro telemetry` experiment and CI scrape a live endpoint and
//!   hard-verify well-formedness and counter monotonicity with these.
//! * [`MetricsServer`] serves `GET /metrics` on a background thread —
//!   since the ops plane landed it is a thin wrapper over
//!   [`OpsServer`](crate::ops::OpsServer), so the same port also
//!   answers `/healthz`, `/readyz`, `/status`, and `/events`.

use crate::report::RunMeta;
use crate::telemetry::{rate_between, MetricsSnapshot, TelemetryHub};
use crate::{Counter, Sample};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// The `Content-Type` of the text exposition format this module emits.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Histogram family names (everything else is classified by suffix).
const HISTOGRAM_FAMILIES: [&str; 2] = ["naspipe_queue_depth", "naspipe_task_latency_microseconds"];

/// Upper bucket bounds used when re-expressing the log2 histograms as
/// cumulative `le` buckets: `2^j - 1` covers log2 buckets `0..=j`.
const LE_EXPONENTS: [u32; 8] = [1, 3, 6, 9, 12, 15, 18, 21];

/// Classifies a metric family name the way the renderer types it:
/// `_total` suffix ⇒ counter, known histogram families ⇒ histogram,
/// everything else ⇒ gauge.
pub fn classify(name: &str) -> &'static str {
    if name.ends_with("_total") {
        "counter"
    } else if HISTOGRAM_FAMILIES.contains(&name) {
        "histogram"
    } else {
        "gauge"
    }
}

/// Escapes a label value per the 0.0.4 format: backslash, double quote
/// and newline.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text: backslash and newline.
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// One family's worth of output: `# HELP`, `# TYPE`, then samples.
fn family(out: &mut String, name: &str, help: &str, samples: &[(String, f64)]) {
    if samples.is_empty() {
        return;
    }
    let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
    let _ = writeln!(out, "# TYPE {name} {}", classify(name));
    for (labels, value) in samples {
        let v = if value.is_finite() {
            format_value(*value)
        } else {
            "0".to_string()
        };
        if labels.is_empty() {
            let _ = writeln!(out, "{name} {v}");
        } else {
            let _ = writeln!(out, "{name}{{{labels}}} {v}");
        }
    }
}

/// Formats a sample value: integers without a fraction, everything else
/// in shortest-roundtrip `f64` form.
fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the full exposition from the hub's latest snapshot pair.
///
/// Counters come from the latest snapshot (cumulative since run start),
/// rate gauges from the delta between the last two snapshots, so a
/// scrape never blocks or touches the stage workers.
pub fn render_exposition(hub: &TelemetryHub, meta: &RunMeta) -> String {
    render_exposition_ops(hub, meta, None, None)
}

/// [`render_exposition`] plus the ops-plane ring-saturation families:
/// `naspipe_journal_dropped_total` when a journal is attached and
/// `naspipe_flight_dropped_total` when a flight recorder is, so ring
/// overflow is visible on a scrape long before anyone reads a dump.
pub fn render_exposition_ops(
    hub: &TelemetryHub,
    meta: &RunMeta,
    journal_dropped: Option<u64>,
    flight_dropped: Option<u64>,
) -> String {
    let (prev, latest) = hub.latest_pair();
    let mut out = String::with_capacity(4096);
    family(
        &mut out,
        "naspipe_run_info",
        "Identity of the run serving this endpoint.",
        &[(
            format!(
                "engine=\"{}\",seed=\"{}\"",
                escape_label_value(&meta.engine),
                meta.seed
                    .map_or_else(|| "none".to_string(), |s| s.to_string()),
            ),
            1.0,
        )],
    );
    family(
        &mut out,
        "naspipe_snapshots_total",
        "Telemetry snapshots published since run start.",
        &[(String::new(), hub.published() as f64)],
    );
    family(
        &mut out,
        "naspipe_telemetry_dropped_total",
        "Snapshots evicted from the telemetry ring buffer.",
        &[(String::new(), hub.samples_dropped() as f64)],
    );
    if let Some(dropped) = journal_dropped {
        family(
            &mut out,
            "naspipe_journal_dropped_total",
            "Events evicted from the structured journal ring.",
            &[(String::new(), dropped as f64)],
        );
    }
    if let Some(dropped) = flight_dropped {
        family(
            &mut out,
            "naspipe_flight_dropped_total",
            "Events evicted from the flight-recorder rings.",
            &[(String::new(), dropped as f64)],
        );
    }
    let Some(snap) = latest else {
        return out;
    };
    family(
        &mut out,
        "naspipe_incarnation",
        "Supervisor incarnation of the run (0 before any stage restart).",
        &[(String::new(), f64::from(snap.incarnation))],
    );
    family(
        &mut out,
        "naspipe_run_time_seconds",
        "Run time at the latest snapshot (wall-clock for the threaded \
         engine, simulated for the DES engine).",
        &[(String::new(), snap.at_us as f64 / 1e6)],
    );

    let stage_counter = |c: Counter| -> Vec<(String, f64)> {
        snap.stages
            .iter()
            .enumerate()
            .map(|(k, s)| (format!("stage=\"{k}\""), s.counter(c) as f64))
            .collect()
    };
    let labeled = |pairs: &[(Counter, &str, &str)]| -> Vec<(String, f64)> {
        let mut rows = Vec::new();
        for (k, s) in snap.stages.iter().enumerate() {
            for (c, key, val) in pairs {
                rows.push((
                    format!("stage=\"{k}\",{key}=\"{val}\""),
                    s.counter(*c) as f64,
                ));
            }
        }
        rows
    };

    family(
        &mut out,
        "naspipe_tasks_total",
        "Pipeline tasks completed per stage and direction.",
        &labeled(&[
            (Counter::ForwardTask, "kind", "forward"),
            (Counter::BackwardTask, "kind", "backward"),
        ]),
    );
    family(
        &mut out,
        "naspipe_backward_preemptions_total",
        "Backward tasks dispatched ahead of a ready forward task.",
        &stage_counter(Counter::BackwardPreemption),
    );
    family(
        &mut out,
        "naspipe_cache_events_total",
        "Context-cache events per stage.",
        &labeled(&[
            (Counter::CacheHit, "event", "hit"),
            (Counter::CacheMiss, "event", "miss"),
            (Counter::CacheEviction, "event", "eviction"),
            (Counter::CachePrefetch, "event", "prefetch"),
        ]),
    );
    family(
        &mut out,
        "naspipe_cache_bytes_total",
        "Context-cache bytes moved per stage and direction.",
        &labeled(&[
            (Counter::CacheBytesFetched, "dir", "fetched"),
            (Counter::CacheBytesEvicted, "dir", "evicted"),
        ]),
    );
    family(
        &mut out,
        "naspipe_idle_microseconds_total",
        "Idle time per stage, split into causal stalls and pipeline bubbles.",
        &labeled(&[
            (Counter::StallUs, "kind", "stall"),
            (Counter::BubbleUs, "kind", "bubble"),
        ]),
    );
    family(
        &mut out,
        "naspipe_recovery_events_total",
        "Fault-tolerance events per stage.",
        &labeled(&[
            (Counter::Retry, "event", "retry"),
            (Counter::Restart, "event", "restart"),
            (Counter::ReplayedTask, "event", "replayed_task"),
        ]),
    );
    family(
        &mut out,
        "naspipe_durable_events_total",
        "Durable checkpoint events per stage.",
        &labeled(&[
            (Counter::DurablePersist, "event", "persist"),
            (Counter::DurableResume, "event", "resume"),
        ]),
    );
    family(
        &mut out,
        "naspipe_stage_pool_jobs_total",
        "Compute-pool jobs fanned out by each stage's kernels.",
        &stage_counter(Counter::PoolJob),
    );
    family(
        &mut out,
        "naspipe_stage_pool_chunks_total",
        "Compute-pool chunks executed for each stage's jobs.",
        &stage_counter(Counter::PoolChunk),
    );
    family(
        &mut out,
        "naspipe_stage_pool_busy_microseconds_total",
        "Compute-pool busy time attributed to each stage's jobs.",
        &stage_counter(Counter::PoolBusyUs),
    );
    family(
        &mut out,
        "naspipe_pool_jobs_total",
        "Compute-pool jobs submitted (whole run).",
        &[(String::new(), snap.pool.jobs as f64)],
    );
    family(
        &mut out,
        "naspipe_pool_chunks_total",
        "Compute-pool chunks executed (whole run).",
        &[(String::new(), snap.pool.chunks as f64)],
    );
    family(
        &mut out,
        "naspipe_pool_busy_microseconds_total",
        "Compute-pool busy time summed over workers (whole run).",
        &[(String::new(), snap.pool.busy_us as f64)],
    );
    let trips = hub.watchdog_trips();
    if trips.iter().any(|&t| t > 0) {
        let samples: Vec<(String, f64)> = crate::watchdog::WatchdogVerdictKind::ALL
            .iter()
            .zip(trips.iter())
            .filter(|(_, &t)| t > 0)
            .map(|(kind, &t)| (format!("kind=\"{}\"", kind.name()), t as f64))
            .collect();
        family(
            &mut out,
            "naspipe_watchdog_trips_total",
            "Watchdog detector trips by kind (latched; at most one per stage per kind).",
            &samples,
        );
    }

    render_histograms(&mut out, &snap);
    render_rates(&mut out, prev.as_ref(), &snap);
    out
}

/// Emits the cumulative-`le` form of the per-stage log2 histograms.
fn render_histograms(out: &mut String, snap: &MetricsSnapshot) {
    let mut emit = |name: &str, help: &str, rows: &[(String, Sample)]| {
        if snap
            .stages
            .iter()
            .all(|s| rows.iter().all(|(_, sample)| s.hist(*sample).count == 0))
        {
            return;
        }
        let _ = writeln!(out, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(out, "# TYPE {name} {}", classify(name));
        for (k, s) in snap.stages.iter().enumerate() {
            for (extra, sample) in rows {
                let h = s.hist(*sample);
                let labels = if extra.is_empty() {
                    format!("stage=\"{k}\"")
                } else {
                    format!("stage=\"{k}\",{extra}")
                };
                let mut cum = 0u64;
                let mut upto = 0usize;
                for j in LE_EXPONENTS {
                    while upto <= j as usize {
                        cum += h.buckets[upto];
                        upto += 1;
                    }
                    let le = (1u64 << j) - 1;
                    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum);
                let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count);
            }
        }
    };
    emit(
        "naspipe_queue_depth",
        "Stage queue depth observed at dispatch decisions.",
        &[(String::new(), Sample::QueueDepth)],
    );
    emit(
        "naspipe_task_latency_microseconds",
        "Task execution latency per stage and direction.",
        &[
            ("kind=\"forward\"".to_string(), Sample::ForwardLatencyUs),
            ("kind=\"backward\"".to_string(), Sample::BackwardLatencyUs),
        ],
    );
}

/// Emits the interval-rate gauges derived from the latest snapshot pair.
fn render_rates(out: &mut String, prev: Option<&MetricsSnapshot>, snap: &MetricsSnapshot) {
    let Some(rate) = prev.and_then(|p| rate_between(p, snap)) else {
        return;
    };
    let per_stage = |f: &dyn Fn(&crate::telemetry::StageRate) -> f64| -> Vec<(String, f64)> {
        rate.stages
            .iter()
            .map(|s| (format!("stage=\"{}\"", s.stage), f(s)))
            .collect()
    };
    family(
        out,
        "naspipe_tasks_per_second",
        "Tasks completed per second over the last sample interval.",
        &per_stage(&|s| s.fwd_per_s + s.bwd_per_s),
    );
    family(
        out,
        "naspipe_cache_hit_ratio",
        "Cache hit ratio over the last sample interval.",
        &per_stage(&|s| s.cache_hit_rate),
    );
    family(
        out,
        "naspipe_stall_fraction",
        "Fraction of the last interval spent causally stalled.",
        &per_stage(&|s| s.stall_frac),
    );
    family(
        out,
        "naspipe_bubble_fraction",
        "Fraction of the last interval spent in pipeline bubbles.",
        &per_stage(&|s| s.bubble_frac),
    );
    family(
        out,
        "naspipe_queue_depth_mean",
        "Mean queue depth over the last interval's dispatch decisions.",
        &per_stage(&|s| s.queue_depth_mean),
    );
    family(
        out,
        "naspipe_pipeline_tasks_per_second",
        "Whole-pipeline tasks per second over the last sample interval.",
        &[(String::new(), rate.tasks_per_s)],
    );
    family(
        out,
        "naspipe_pool_utilization",
        "Compute-pool busy worker-seconds per second over the last interval.",
        &[(String::new(), rate.pool_busy_frac)],
    );
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Metric name as written (histogram samples keep their suffix).
    pub name: String,
    /// Labels in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl ParsedSample {
    /// Canonical series key: name plus sorted labels.
    pub fn series_key(&self) -> String {
        let mut labels = self.labels.clone();
        labels.sort();
        let body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }

    fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition: family types plus every sample.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// `# TYPE` declarations, family name → type.
    pub types: BTreeMap<String, String>,
    /// `# HELP` declarations, family name → help text.
    pub helps: BTreeMap<String, String>,
    /// Every sample line in source order.
    pub samples: Vec<ParsedSample>,
}

impl Exposition {
    /// The family a sample belongs to: its own name, or the base name
    /// for `_bucket`/`_sum`/`_count` samples of a declared histogram.
    pub fn family_of(&self, sample_name: &str) -> Option<&str> {
        if self.types.contains_key(sample_name) {
            return self
                .types
                .get_key_value(sample_name)
                .map(|(k, _)| k.as_str());
        }
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = sample_name.strip_suffix(suffix) {
                if self.types.get(base).map(String::as_str) == Some("histogram") {
                    return self.types.get_key_value(base).map(|(k, _)| k.as_str());
                }
            }
        }
        None
    }

    /// Values of every counter series, keyed by canonical series key.
    pub fn counters(&self) -> BTreeMap<String, f64> {
        self.samples
            .iter()
            .filter(|s| {
                self.family_of(&s.name)
                    .and_then(|f| self.types.get(f))
                    .map(String::as_str)
                    == Some("counter")
            })
            .map(|s| (s.series_key(), s.value))
            .collect()
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    loop {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest:?}"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("bad label name {key:?}"));
        }
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("label value not quoted: {after:?}"));
        }
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label value")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value: {after:?}"))?;
        labels.push((key.to_string(), value));
        rest = &after[1 + end + 1..];
    }
}

/// Parses one non-comment, non-empty line as a sample.
fn parse_sample(line: &str) -> Result<ParsedSample, String> {
    let (name_and_labels, value_part) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unbalanced braces: {line:?}"))?;
            if close < open {
                return Err(format!("unbalanced braces: {line:?}"));
            }
            (
                (&line[..open], Some(&line[open + 1..close])),
                line[close + 1..].trim(),
            )
        }
        None => {
            let sp = line
                .find(' ')
                .ok_or_else(|| format!("sample without value: {line:?}"))?;
            ((&line[..sp], None), line[sp + 1..].trim())
        }
    };
    let (name, label_body) = name_and_labels;
    let name = name.trim();
    if !valid_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let labels = match label_body {
        Some(body) => parse_labels(body)?,
        None => Vec::new(),
    };
    let mut fields = value_part.split_whitespace();
    let raw = fields
        .next()
        .ok_or_else(|| format!("sample without value: {line:?}"))?;
    let value = match raw {
        "+Inf" | "Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        raw => raw
            .parse::<f64>()
            .map_err(|_| format!("bad sample value {raw:?} in {line:?}"))?,
    };
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?} in {line:?}"))?;
    }
    if fields.next().is_some() {
        return Err(format!("trailing garbage in {line:?}"));
    }
    Ok(ParsedSample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Parses a full exposition without judging it; syntax errors only.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut expo = Exposition::default();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default().to_string();
            let ty = parts.next().unwrap_or_default().to_string();
            if !valid_name(&name) {
                return Err(format!("line {n}: bad TYPE name {name:?}"));
            }
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty.as_str()) {
                return Err(format!("line {n}: bad TYPE {ty:?} for {name}"));
            }
            if expo.types.insert(name.clone(), ty).is_some() {
                return Err(format!("line {n}: duplicate TYPE for {name}"));
            }
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or_default().to_string();
            let help = parts.next().unwrap_or_default().to_string();
            if !valid_name(&name) {
                return Err(format!("line {n}: bad HELP name {name:?}"));
            }
            if expo.helps.insert(name.clone(), help).is_some() {
                return Err(format!("line {n}: duplicate HELP for {name}"));
            }
        } else if line.starts_with('#') {
            continue; // other comments are ignored per the format spec
        } else {
            let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
            expo.samples.push(sample);
        }
    }
    Ok(expo)
}

/// Hard-verifies an exposition: syntax, every sample covered by exactly
/// one `TYPE` declared *before* it, `HELP` before `TYPE`, no duplicate
/// series, counters finite and non-negative, histogram `le` buckets
/// cumulative with a `+Inf` bucket equal to `_count`.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let expo = parse_exposition(text)?;

    // Declaration order: HELP before TYPE before first sample.
    let mut seen_types: BTreeSet<String> = BTreeSet::new();
    let mut family_done: BTreeSet<String> = BTreeSet::new();
    let mut last_family: Option<String> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap_or_default().to_string();
            if !expo.helps.contains_key(&name) {
                return Err(format!("TYPE {name} has no HELP"));
            }
            seen_types.insert(name);
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default();
            if seen_types.contains(name) {
                return Err(format!("HELP {name} after its TYPE"));
            }
        } else if !line.is_empty() && !line.starts_with('#') {
            let sample = parse_sample(line)?;
            let family = expo
                .family_of(&sample.name)
                .ok_or_else(|| format!("sample {} has no TYPE", sample.name))?
                .to_string();
            if !seen_types.contains(&family) {
                return Err(format!("sample {} before TYPE {family}", sample.name));
            }
            // Families must be contiguous blocks (the renderer's shape;
            // scattering samples of one family is a rendering bug).
            if last_family.as_deref() != Some(family.as_str()) {
                if family_done.contains(&family) {
                    return Err(format!("family {family} split into multiple blocks"));
                }
                if let Some(prev) = last_family.take() {
                    family_done.insert(prev);
                }
                last_family = Some(family);
            }
        }
    }

    // No duplicate series.
    let mut seen_series = BTreeSet::new();
    for s in &expo.samples {
        if !seen_series.insert(s.series_key()) {
            return Err(format!("duplicate series {}", s.series_key()));
        }
    }

    // Counter values are finite and non-negative.
    for (key, v) in expo.counters() {
        if !v.is_finite() || v < 0.0 {
            return Err(format!("counter {key} has bad value {v}"));
        }
    }

    // Histogram buckets are cumulative and capped by +Inf == _count.
    for (name, ty) in &expo.types {
        if ty != "histogram" {
            continue;
        }
        let mut per_series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        for s in &expo.samples {
            let base_labels = {
                let mut l: Vec<(String, String)> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .cloned()
                    .collect();
                l.sort();
                format!("{l:?}")
            };
            if s.name == format!("{name}_bucket") {
                let le = match s.label("le") {
                    Some("+Inf") => f64::INFINITY,
                    Some(le) => le
                        .parse::<f64>()
                        .map_err(|_| format!("bad le {le:?} on {name}"))?,
                    None => return Err(format!("{name}_bucket without le label")),
                };
                per_series
                    .entry(base_labels)
                    .or_default()
                    .push((le, s.value));
            } else if s.name == format!("{name}_count") {
                counts.insert(base_labels, s.value);
            }
        }
        for (labels, mut buckets) in per_series {
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le values comparable"));
            let mut prev = -1.0;
            for (_, v) in &buckets {
                if *v < prev {
                    return Err(format!("{name}{labels} buckets not cumulative"));
                }
                prev = *v;
            }
            let last = buckets.last().expect("non-empty bucket list");
            if !last.0.is_infinite() {
                return Err(format!("{name}{labels} missing +Inf bucket"));
            }
            match counts.get(&labels) {
                Some(c) if *c == last.1 => {}
                Some(c) => {
                    return Err(format!(
                        "{name}{labels} +Inf bucket {} != count {c}",
                        last.1
                    ))
                }
                None => return Err(format!("{name}{labels} missing _count")),
            }
        }
    }
    Ok(())
}

/// Parses the exposition and returns every counter series value, keyed
/// by canonical series key — the monotonicity check between scrapes.
pub fn counter_values(text: &str) -> Result<BTreeMap<String, f64>, String> {
    Ok(parse_exposition(text)?.counters())
}

/// Asserts every counter present in both scrapes is non-decreasing;
/// returns the violations (empty = monotone).
pub fn monotonicity_violations(earlier: &str, later: &str) -> Result<Vec<String>, String> {
    let a = counter_values(earlier)?;
    let b = counter_values(later)?;
    Ok(a.iter()
        .filter_map(|(key, &va)| match b.get(key) {
            Some(&vb) if vb < va => Some(format!("{key}: {va} -> {vb}")),
            _ => None,
        })
        .collect())
}

/// Background metrics server: the historical single-endpoint entry
/// point, now a thin wrapper over the multi-route
/// [`OpsServer`](crate::ops::OpsServer) with a minimal
/// [`OpsState`](crate::ops::OpsState) (fresh journal, phase `Running`).
/// Existing callers keep `GET /metrics` exactly as before and gain
/// `/healthz`, `/readyz`, `/status`, and `/events` for free; runs that
/// want the full ops plane (journal sink, `/flight`, real phases) bind
/// an `OpsServer` over their own state instead.
///
/// Binds synchronously (so `local_addr` is final — bind to port 0 for
/// an ephemeral port, reported once on stderr), serves until dropped or
/// [`shutdown`](Self::shutdown).
pub struct MetricsServer {
    inner: crate::ops::OpsServer,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9464"` or `"127.0.0.1:0"`) and
    /// starts serving `GET /metrics` from `hub`.
    pub fn bind(
        addr: &str,
        hub: Arc<TelemetryHub>,
        meta: RunMeta,
    ) -> std::io::Result<MetricsServer> {
        let state = crate::ops::OpsState::new(meta, hub, Arc::new(crate::journal::Journal::new(0)));
        state.set_phase(crate::ops::RunPhase::Running);
        Ok(MetricsServer {
            inner: crate::ops::OpsServer::bind(addr, Arc::new(state))?,
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}

/// Minimal HTTP client for scraping a [`MetricsServer`] (tests, the
/// `repro telemetry` experiment, CI). Returns the response body.
pub fn scrape(addr: impl ToSocketAddrs) -> std::io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let mut parts = raw.splitn(2, "\r\n\r\n");
    let head = parts.next().unwrap_or_default();
    let body = parts.next().unwrap_or_default();
    if !head.starts_with("HTTP/1.1 200") && !head.starts_with("HTTP/1.0 200") {
        return Err(std::io::Error::other(format!(
            "bad status: {}",
            head.lines().next().unwrap_or_default()
        )));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TeeRecorder;
    use crate::Recorder as _;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn busy_hub() -> Arc<TelemetryHub> {
        let hub = Arc::new(TelemetryHub::new(2, 64));
        let mut tee = TeeRecorder::new(Some(hub.clone()));
        for i in 0..20u64 {
            tee.incr(0, Counter::ForwardTask, 1);
            tee.incr(0, Counter::CacheHit, 2);
            tee.incr(1, Counter::BackwardTask, 1);
            tee.incr(1, Counter::CacheMiss, 1);
            tee.sample(0, Sample::QueueDepth, i % 5);
            tee.sample(1, Sample::ForwardLatencyUs, 100 + i);
            tee.sample(1, Sample::BackwardLatencyUs, 300 + i);
        }
        hub.record(0, Counter::StallUs, 30_000);
        hub.set_pool(8, 64, 120_000);
        hub.publish(100_000);
        hub.record(0, Counter::ForwardTask, 7);
        hub.publish(200_000);
        hub
    }

    #[test]
    fn watchdog_trips_family_appears_only_after_a_trip() {
        let hub = busy_hub();
        let meta = RunMeta::new("threaded", 2).seed(7);
        let clean = render_exposition(&hub, &meta);
        assert!(!clean.contains("naspipe_watchdog_trips_total"));
        hub.record_watchdog_trip(crate::watchdog::WatchdogVerdictKind::Straggler);
        hub.record_watchdog_trip(crate::watchdog::WatchdogVerdictKind::Straggler);
        hub.record_watchdog_trip(crate::watchdog::WatchdogVerdictKind::CspConvoy);
        let tripped = render_exposition(&hub, &meta);
        validate_exposition(&tripped).expect(&tripped);
        assert!(tripped.contains("naspipe_watchdog_trips_total{kind=\"straggler\"} 2"));
        assert!(tripped.contains("naspipe_watchdog_trips_total{kind=\"csp-convoy\"} 1"));
        assert!(!tripped.contains("kind=\"stage-stall\""));
    }

    #[test]
    fn exposition_is_valid_and_carries_per_stage_series() {
        let hub = busy_hub();
        let meta = RunMeta::new("threaded", 2).seed(7);
        let text = render_exposition(&hub, &meta);
        validate_exposition(&text).expect(&text);
        for needle in [
            "naspipe_tasks_total{stage=\"0\",kind=\"forward\"} 27",
            "naspipe_cache_events_total{stage=\"1\",event=\"miss\"} 20",
            "naspipe_queue_depth_bucket{stage=\"0\",le=\"+Inf\"} 20",
            "naspipe_pool_busy_microseconds_total 120000",
            "naspipe_run_info{engine=\"threaded\",seed=\"7\"} 1",
            "naspipe_snapshots_total 2",
            "naspipe_tasks_per_second{stage=\"0\"} 70",
            "naspipe_incarnation 0",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn label_values_escape_quotes_backslashes_newlines() {
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        // Round-trip through the parser.
        let tricky = "we\\ird \"quoted\"\nvalue";
        let line = format!(
            "naspipe_run_info{{engine=\"{}\"}} 1",
            escape_label_value(tricky)
        );
        let sample = parse_sample(&line).unwrap();
        assert_eq!(sample.labels[0].1, tricky);
        // And the full render survives a hostile engine name.
        let hub = TelemetryHub::new(1, 8);
        hub.publish(1000);
        let text = render_exposition(&hub, &RunMeta::new(tricky, 1));
        validate_exposition(&text).expect(&text);
    }

    #[test]
    fn help_comes_before_type_and_types_match_suffix_classes() {
        let hub = busy_hub();
        let text = render_exposition(&hub, &RunMeta::new("des", 2));
        let expo = parse_exposition(&text).unwrap();
        for (name, ty) in &expo.types {
            assert_eq!(ty, classify(name), "family {name}");
            if name.ends_with("_total") {
                assert_eq!(ty, "counter", "family {name}");
            } else {
                assert_ne!(ty, "counter", "family {name}");
            }
            assert!(expo.helps.contains_key(name), "HELP missing for {name}");
            let help_pos = text.find(&format!("# HELP {name} ")).unwrap();
            let type_pos = text.find(&format!("# TYPE {name} ")).unwrap();
            assert!(help_pos < type_pos, "HELP after TYPE for {name}");
        }
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        // No TYPE at all.
        assert!(validate_exposition("naspipe_x_total 1\n").is_err());
        // Sample before its TYPE.
        let bad = "# HELP naspipe_x_total h\nnaspipe_x_total 1\n# TYPE naspipe_x_total counter\n";
        assert!(validate_exposition(bad).is_err());
        // Unquoted label value.
        assert!(parse_sample("m{stage=0} 1").is_err());
        // Unterminated label value.
        assert!(parse_sample("m{stage=\"0} 1").is_err());
        // Negative counter.
        let neg = "# HELP naspipe_x_total h\n# TYPE naspipe_x_total counter\nnaspipe_x_total -1\n";
        assert!(validate_exposition(neg).unwrap_err().contains("bad value"));
        // Duplicate series.
        let dup = "# HELP naspipe_g h\n# TYPE naspipe_g gauge\nnaspipe_g 1\nnaspipe_g 2\n";
        assert!(validate_exposition(dup).unwrap_err().contains("duplicate"));
        // Histogram whose +Inf disagrees with _count.
        let hist = "# HELP naspipe_queue_depth h\n# TYPE naspipe_queue_depth histogram\n\
                    naspipe_queue_depth_bucket{le=\"1\"} 1\n\
                    naspipe_queue_depth_bucket{le=\"+Inf\"} 3\n\
                    naspipe_queue_depth_sum 9\nnaspipe_queue_depth_count 4\n";
        assert!(validate_exposition(hist).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn scraped_counters_stay_monotone_under_concurrent_writes() {
        // Satellite: 100 snapshots while writer threads hammer the hub;
        // every counter in every consecutive scrape pair must be
        // non-decreasing.
        let hub = Arc::new(TelemetryHub::new(2, 128));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..2u32)
            .map(|stage| {
                let hub = hub.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut tee = TeeRecorder::new(Some(hub));
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        tee.incr(stage, Counter::ForwardTask, 1);
                        tee.incr(stage, Counter::CacheHit, 3);
                        tee.incr(stage, Counter::StallUs, 17);
                        tee.sample(stage, Sample::QueueDepth, i % 7);
                        i += 1;
                    }
                })
            })
            .collect();
        let meta = RunMeta::new("threaded", 2);
        let mut prev: Option<String> = None;
        for t in 0..100u64 {
            hub.publish(t * 1000 + 1);
            let text = render_exposition(&hub, &meta);
            validate_exposition(&text).expect(&text);
            if let Some(p) = &prev {
                let violations = monotonicity_violations(p, &text).unwrap();
                assert!(violations.is_empty(), "{violations:?}");
            }
            prev = Some(text);
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(hub.published(), 100);
    }

    #[test]
    fn http_server_serves_metrics_and_404s_elsewhere() {
        let hub = busy_hub();
        let meta = RunMeta::new("threaded", 2).seed(9);
        let mut server = MetricsServer::bind("127.0.0.1:0", hub.clone(), meta).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        let body = scrape(addr).unwrap();
        validate_exposition(&body).expect(&body);
        assert!(body.contains("naspipe_tasks_total"));
        // Non-/metrics paths 404.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        server.shutdown();
        // After shutdown the port stops answering.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn empty_hub_renders_minimal_but_valid_text() {
        let hub = TelemetryHub::new(0, 8);
        let text = render_exposition(&hub, &RunMeta::new("des", 0));
        validate_exposition(&text).expect(&text);
        assert!(text.contains("naspipe_snapshots_total 0"));
        assert!(!text.contains("naspipe_tasks_total"));
    }
}
