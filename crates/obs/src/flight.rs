//! Always-on flight recorder: bounded per-stage rings of compact events.
//!
//! Both engines feed a [`FlightRecorder`] from their hot paths. Each
//! stage owns a fixed-capacity ring, so a misbehaving run can never grow
//! memory without bound — when a ring is full the oldest event is
//! dropped (and counted). Recording takes `&self` with one uncontended
//! per-stage mutex (each stage has a single writer; the only cross-stage
//! contention is a dump reading all rings at once), and recording has
//! the same zero-effect-on-results guarantee as `obs::telemetry`: the
//! bitwise-equal run tests in `core` prove enabling it changes nothing.
//!
//! The log is dumped to a `.flight.json` artifact on panic escalation,
//! fault recovery, watchdog trip, or explicit request (`--flight-dump`),
//! so the last `capacity` events per stage survive for `naspipe doctor`.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Ring capacity per stage when the configuration leaves it 0.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// What happened. The `detail` payload of a [`FlightEvent`] is
/// kind-specific (documented per variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlightEventKind {
    /// A forward task was admitted by the scheduler. `detail` = subnet
    /// sequence id.
    Admission,
    /// The stage had forward work queued but the CSP rule admitted none
    /// of it. `detail` = number of queued-but-inadmissible candidates.
    CspStall,
    /// A task blocked on a synchronous parameter fetch. `detail` =
    /// missing bytes.
    FetchWait,
    /// A CSP-watermark checkpoint cut completed. `detail` = watermark.
    CheckpointCut,
    /// An injected or simulated fault fired. `detail` = subnet.
    Fault,
    /// A recovery transition (restart / rollback replay). `detail` =
    /// the incarnation that takes over.
    Recovery,
    /// A compute-pool job batch retired with the task that ran it.
    /// `detail` = job count.
    PoolJob,
    /// A watchdog detector latched. `detail` = verdict-kind index.
    WatchdogTrip,
}

impl FlightEventKind {
    /// Stable kebab-case name used in the dump JSON.
    pub fn name(self) -> &'static str {
        match self {
            FlightEventKind::Admission => "admission",
            FlightEventKind::CspStall => "csp-stall",
            FlightEventKind::FetchWait => "fetch-wait",
            FlightEventKind::CheckpointCut => "checkpoint-cut",
            FlightEventKind::Fault => "fault",
            FlightEventKind::Recovery => "recovery",
            FlightEventKind::PoolJob => "pool-job",
            FlightEventKind::WatchdogTrip => "watchdog-trip",
        }
    }
}

/// One compact recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since run start (simulated or wall-clock).
    pub at_us: u64,
    /// Stage the event happened on.
    pub stage: u32,
    /// What happened.
    pub kind: FlightEventKind,
    /// Kind-specific payload (see [`FlightEventKind`]).
    pub detail: u64,
}

struct Ring {
    buf: VecDeque<FlightEvent>,
    dropped: u64,
}

/// Lock-light bounded event recorder, one ring per stage.
///
/// Out-of-range stages are silently dropped, mirroring
/// [`TelemetryHub`](crate::TelemetryHub)'s contract.
pub struct FlightRecorder {
    rings: Vec<Mutex<Ring>>,
    capacity: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("stages", &self.rings.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder for `num_stages` stages with `capacity` events per
    /// stage (0 means [`DEFAULT_FLIGHT_CAPACITY`]).
    pub fn new(num_stages: usize, capacity: usize) -> Self {
        let capacity = if capacity == 0 {
            DEFAULT_FLIGHT_CAPACITY
        } else {
            capacity
        };
        FlightRecorder {
            rings: (0..num_stages)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: VecDeque::with_capacity(capacity.min(4096)),
                        dropped: 0,
                    })
                })
                .collect(),
            capacity,
        }
    }

    /// Per-stage ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Stage capacity the recorder was built with.
    pub fn num_stages(&self) -> usize {
        self.rings.len()
    }

    /// Records one event (hot path; one uncontended per-stage lock).
    pub fn record(&self, stage: u32, at_us: u64, kind: FlightEventKind, detail: u64) {
        let Some(ring) = self.rings.get(stage as usize) else {
            return;
        };
        let mut ring = ring.lock().expect("flight ring poisoned");
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(FlightEvent {
            at_us,
            stage,
            kind,
            detail,
        });
    }

    /// Total events evicted across all rings — the saturation signal the
    /// `naspipe_flight_dropped_total` family exports without paying for a
    /// full [`snapshot`](Self::snapshot) on every scrape.
    pub fn dropped(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.lock().expect("flight ring poisoned").dropped)
            .sum()
    }

    /// Copies every ring into an immutable, time-ordered log.
    pub fn snapshot(&self) -> FlightLog {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in &self.rings {
            let ring = ring.lock().expect("flight ring poisoned");
            events.extend(ring.buf.iter().copied());
            dropped += ring.dropped;
        }
        // Stable sort: per-stage insertion order is preserved for ties.
        events.sort_by_key(|e| (e.at_us, e.stage));
        FlightLog {
            capacity: self.capacity as u64,
            events,
            dropped,
        }
    }
}

/// A point-in-time copy of the recorder, merged and time-ordered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightLog {
    /// Per-stage ring capacity the events were captured under.
    pub capacity: u64,
    /// Events in `(at_us, stage)` order.
    pub events: Vec<FlightEvent>,
    /// Events evicted across all rings because they were full.
    pub dropped: u64,
}

impl FlightLog {
    /// The compact totals embedded in the ObsReport JSON.
    pub fn summary(&self) -> FlightSummary {
        FlightSummary {
            events: self.events.len() as u64,
            dropped: self.dropped,
            capacity: self.capacity,
        }
    }

    /// Renders the dump artifact (`reason` names what triggered it:
    /// `"panic"`, `"fault"`, `"watchdog-trip"`, `"end-of-run"`).
    pub fn to_json(&self, reason: &str) -> String {
        let mut out = String::with_capacity(64 + 64 * self.events.len());
        let _ = write!(
            out,
            "{{\"reason\":\"{}\",\"capacity\":{},\"dropped\":{},\"events\":[",
            reason, self.capacity, self.dropped
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"at_us\":{},\"stage\":{},\"kind\":\"{}\",\"detail\":{}}}",
                e.at_us,
                e.stage,
                e.kind.name(),
                e.detail
            );
        }
        out.push_str("]}");
        out
    }

    /// Writes the dump artifact to `path` (creating parent directories).
    pub fn write_dump(&self, path: &str, reason: &str) -> std::io::Result<()> {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json(reason))
    }
}

/// Totals-only view of a [`FlightLog`] for the ObsReport (schema 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightSummary {
    /// Events retained across all rings at snapshot time.
    pub events: u64,
    /// Events evicted because rings were full.
    pub dropped: u64,
    /// Per-stage ring capacity (0 only in the empty default).
    pub capacity: u64,
}

impl FlightSummary {
    /// Whether nothing was recorded (the schema-4-compatible state).
    pub fn is_empty(&self) -> bool {
        self.events == 0 && self.dropped == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let rec = FlightRecorder::new(2, 3);
        for i in 0..5 {
            rec.record(0, i * 10, FlightEventKind::Admission, i);
        }
        let log = rec.snapshot();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.dropped, 2);
        // Oldest evicted first: 20, 30, 40 survive.
        assert_eq!(
            log.events.iter().map(|e| e.at_us).collect::<Vec<_>>(),
            vec![20, 30, 40]
        );
    }

    #[test]
    fn snapshot_merges_stages_in_time_order() {
        let rec = FlightRecorder::new(3, 8);
        rec.record(2, 50, FlightEventKind::CspStall, 1);
        rec.record(0, 10, FlightEventKind::Admission, 7);
        rec.record(1, 10, FlightEventKind::FetchWait, 4096);
        rec.record(0, 90, FlightEventKind::CheckpointCut, 8);
        let log = rec.snapshot();
        let order: Vec<(u64, u32)> = log.events.iter().map(|e| (e.at_us, e.stage)).collect();
        assert_eq!(order, vec![(10, 0), (10, 1), (50, 2), (90, 0)]);
    }

    #[test]
    fn out_of_range_stage_is_dropped_silently() {
        let rec = FlightRecorder::new(1, 4);
        rec.record(9, 1, FlightEventKind::Fault, 0);
        assert!(rec.snapshot().events.is_empty());
    }

    #[test]
    fn zero_capacity_uses_default() {
        let rec = FlightRecorder::new(1, 0);
        assert_eq!(rec.capacity(), DEFAULT_FLIGHT_CAPACITY);
    }

    #[test]
    fn json_dump_names_kind_and_reason() {
        let rec = FlightRecorder::new(1, 4);
        rec.record(0, 12, FlightEventKind::WatchdogTrip, 1);
        let json = rec.snapshot().to_json("watchdog-trip");
        assert!(json.starts_with("{\"reason\":\"watchdog-trip\","));
        assert!(json.contains("\"kind\":\"watchdog-trip\""));
        assert!(json.contains("\"at_us\":12"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn summary_tracks_counts() {
        let rec = FlightRecorder::new(2, 2);
        rec.record(0, 1, FlightEventKind::Admission, 0);
        rec.record(0, 2, FlightEventKind::Admission, 1);
        rec.record(0, 3, FlightEventKind::Admission, 2);
        assert_eq!(rec.dropped(), 1, "cheap accessor agrees with snapshot");
        let s = rec.snapshot().summary();
        assert_eq!(s.events, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.capacity, 2);
        assert!(!s.is_empty());
        assert!(FlightSummary::default().is_empty());
    }
}
