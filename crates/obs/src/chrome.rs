//! Chrome trace-event export for [`SpanTrace`]s.
//!
//! Emits the JSON Object Format of the Trace Event spec — loadable in
//! Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`: one `"X"`
//! complete event per span (`ts`/`dur` in microseconds, `tid` = stage)
//! and an `"s"`/`"f"` flow-event pair per causal edge, so Perfetto draws
//! an arrow from the releasing span to the released one.
//!
//! Every `"X"` event's `args` carries the exact span fields (`span_id`,
//! `subnet`, `cause_src`, `cause_kind`, ...), so [`parse_chrome`]
//! reconstructs the original trace losslessly — the round-trip is the
//! in-repo proof the output is well-formed JSON a viewer will accept
//! (no serde in the build environment; both directions are hand-rolled).

use crate::report::RunMeta;
use crate::trace::{CausalEdge, CauseKind, Span, SpanId, SpanKind, SpanTrace};
use std::fmt::Write as _;

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes `trace` to Chrome trace-event JSON (object format).
pub fn export_chrome(trace: &SpanTrace, meta: &RunMeta) -> String {
    let mut out = String::with_capacity(256 + trace.len() * 192);
    out.push_str("{\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push_event = |out: &mut String, body: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(body);
    };

    // Thread-name metadata: one lane per stage, named P{k}.
    for stage in 0..trace.num_stages() {
        push_event(
            &mut out,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{stage},\
                 \"args\":{{\"name\":\"P{stage}\"}}}}"
            ),
        );
    }

    let mut flows: Vec<(u64, &Span, &Span)> = Vec::new();
    for span in trace.spans() {
        let mut ev = String::with_capacity(192);
        ev.push_str("{\"name\":");
        escape_json(&span.label(), &mut ev);
        let _ = write!(
            ev,
            ",\"cat\":\"{kind}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\
             \"tid\":{tid},\"args\":{{\"span_id\":{id},\"kind\":\"{kind}\",\"stage\":{tid}",
            kind = span.kind.name(),
            ts = span.start_us,
            dur = span.dur_us(),
            tid = span.stage,
            id = span.id.0,
        );
        if let Some(subnet) = span.subnet {
            let _ = write!(ev, ",\"subnet\":{subnet}");
        }
        if let Some(cause) = &span.cause {
            let _ = write!(
                ev,
                ",\"cause_src\":{},\"cause_kind\":\"{}\"",
                cause.src.0,
                cause.kind.name()
            );
            match cause.kind {
                CauseKind::CspWriterCompletion { writer } => {
                    let _ = write!(ev, ",\"cause_writer\":{writer}");
                }
                CauseKind::RecoveryReplay { incarnation } => {
                    let _ = write!(ev, ",\"cause_incarnation\":{incarnation}");
                }
                _ => {}
            }
            if let Some(src) = trace.get(cause.src) {
                flows.push((span.id.0, src, span));
            }
        }
        ev.push_str("}}");
        push_event(&mut out, &ev);
    }

    // Flow events: arrow from the releasing span's end to the released
    // span's start. bp:"e" binds the start point to the enclosing slice.
    for (flow_id, src, dst) in flows {
        let kind = dst.cause.as_ref().expect("flow implies cause").kind;
        push_event(
            &mut out,
            &format!(
                "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":{flow_id},\
                 \"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                name = kind.name(),
                ts = src.end_us,
                tid = src.stage,
            ),
        );
        push_event(
            &mut out,
            &format!(
                "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\
                 \"id\":{flow_id},\"ts\":{ts},\"pid\":1,\"tid\":{tid}}}",
                name = kind.name(),
                ts = dst.start_us,
                tid = dst.stage,
            ),
        );
    }

    out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {");
    let _ = write!(out, "\"schema\": 2, \"engine\": ");
    escape_json(&meta.engine, &mut out);
    let _ = write!(out, ", \"stages\": {}", meta.stages);
    if let Some(seed) = meta.seed {
        let _ = write!(out, ", \"seed\": {seed}");
    }
    out.push_str("}\n}\n");
    out
}

/// Why [`parse_chrome`] rejected an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeParseError {
    /// Human-readable reason.
    pub message: String,
}

impl std::fmt::Display for ChromeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chrome trace parse error: {}", self.message)
    }
}

impl std::error::Error for ChromeParseError {}

fn err<T>(message: impl Into<String>) -> Result<T, ChromeParseError> {
    Err(ChromeParseError {
        message: message.into(),
    })
}

/// Minimal JSON value for the hand-rolled parser.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ChromeParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, ChromeParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ChromeParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, ChromeParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ChromeParseError {
                message: "non-utf8 number".into(),
            })?
            .to_string();
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => err(format!("invalid number {text:?} at byte {start}")),
        }
    }

    fn string(&mut self) -> Result<String, ChromeParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                None => return err("invalid \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ChromeParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ChromeParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn cause_from_args(args: &Json) -> Result<Option<CausalEdge>, ChromeParseError> {
    let Some(src) = args.get("cause_src").and_then(Json::as_u64) else {
        return Ok(None);
    };
    let kind_name = args
        .get("cause_kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ChromeParseError {
            message: "cause_src without cause_kind".into(),
        })?;
    let kind = match kind_name {
        "injection" => CauseKind::Injection,
        "activation-arrival" => CauseKind::ActivationArrival,
        "gradient-arrival" => CauseKind::GradientArrival,
        "fetch-completion" => CauseKind::FetchCompletion,
        "csp-writer-completion" => CauseKind::CspWriterCompletion {
            writer: args
                .get("cause_writer")
                .and_then(Json::as_u64)
                .ok_or_else(|| ChromeParseError {
                    message: "csp-writer-completion without cause_writer".into(),
                })?,
        },
        "recovery-replay" => CauseKind::RecoveryReplay {
            incarnation: args
                .get("cause_incarnation")
                .and_then(Json::as_u64)
                .ok_or_else(|| ChromeParseError {
                    message: "recovery-replay without cause_incarnation".into(),
                })? as u32,
        },
        other => return err(format!("unknown cause_kind {other:?}")),
    };
    Ok(Some(CausalEdge {
        src: SpanId(src),
        kind,
    }))
}

/// Parses a file produced by [`export_chrome`] back into a
/// [`SpanTrace`] (plus the embedded [`RunMeta`]). Only `"X"` events
/// with a `span_id` arg become spans; metadata and flow events are
/// structural and skipped.
pub fn parse_chrome(input: &str) -> Result<(SpanTrace, RunMeta), ChromeParseError> {
    let mut parser = Parser::new(input);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return err(format!("trailing bytes at {}", parser.pos));
    }
    let events = match root.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return err("missing traceEvents array"),
    };
    let mut spans = Vec::new();
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let args = ev.get("args").ok_or_else(|| ChromeParseError {
            message: "X event without args".into(),
        })?;
        let Some(id) = args.get("span_id").and_then(Json::as_u64) else {
            continue;
        };
        let kind_name =
            args.get("kind")
                .and_then(Json::as_str)
                .ok_or_else(|| ChromeParseError {
                    message: format!("span {id} without kind"),
                })?;
        let kind = SpanKind::from_name(kind_name).ok_or_else(|| ChromeParseError {
            message: format!("span {id} has unknown kind {kind_name:?}"),
        })?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| ChromeParseError {
                message: format!("span {id} without ts"),
            })?;
        let dur = ev
            .get("dur")
            .and_then(Json::as_u64)
            .ok_or_else(|| ChromeParseError {
                message: format!("span {id} without dur"),
            })?;
        let stage = ev
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| ChromeParseError {
                message: format!("span {id} without tid"),
            })? as u32;
        spans.push(Span {
            id: SpanId(id),
            stage,
            kind,
            subnet: args.get("subnet").and_then(Json::as_u64),
            start_us: ts,
            end_us: ts + dur,
            cause: cause_from_args(args)?,
        });
    }
    let other = root.get("otherData");
    let meta = RunMeta {
        engine: other
            .and_then(|o| o.get("engine"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        stages: other
            .and_then(|o| o.get("stages"))
            .and_then(Json::as_u64)
            .unwrap_or(0) as u32,
        seed: other.and_then(|o| o.get("seed")).and_then(Json::as_u64),
    };
    Ok((SpanTrace::from_spans(spans), meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanDraft, SpanTracer, Tracer};

    fn sample_trace() -> SpanTrace {
        let mut t = SpanTracer::with_namespace(3);
        let f0 = t.emit(
            SpanDraft::new(0, SpanKind::Forward, 0, 10)
                .subnet(0)
                .caused_by(SpanId::EXTERNAL, CauseKind::Injection),
        );
        let fetch = t.emit(SpanDraft::new(1, SpanKind::Fetch, 10, 14).subnet(0));
        let f1 = t.emit(
            SpanDraft::new(1, SpanKind::Forward, 14, 24)
                .subnet(0)
                .caused_by(fetch, CauseKind::FetchCompletion),
        );
        t.emit(
            SpanDraft::new(0, SpanKind::Forward, 12, 22)
                .subnet(1)
                .caused_by(f0, CauseKind::CspWriterCompletion { writer: 0 }),
        );
        t.emit(
            SpanDraft::new(1, SpanKind::Backward, 24, 30)
                .subnet(0)
                .caused_by(f1, CauseKind::GradientArrival),
        );
        t.emit(SpanDraft::new(1, SpanKind::Evict, 30, 30));
        t.take()
    }

    #[test]
    fn round_trip_preserves_every_span() {
        let trace = sample_trace();
        let meta = RunMeta::new("des", 2).seed(7);
        let json = export_chrome(&trace, &meta);
        let (parsed, parsed_meta) = parse_chrome(&json).expect("parse back");
        assert_eq!(parsed, trace);
        assert_eq!(parsed_meta, meta);
    }

    #[test]
    fn export_contains_flow_pair_per_internal_edge() {
        let trace = sample_trace();
        let json = export_chrome(&trace, &RunMeta::new("des", 2));
        // 4 causal edges, one of which (Injection) points outside the
        // trace -> 3 flow pairs.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 3);
        assert!(json.contains("\"bp\":\"e\""));
        assert!(json.contains("\"thread_name\""));
    }

    #[test]
    fn parser_rejects_garbage_and_truncation() {
        assert!(parse_chrome("not json").is_err());
        assert!(parse_chrome("{}").is_err());
        let good = export_chrome(&sample_trace(), &RunMeta::new("des", 2));
        let truncated = &good[..good.len() / 2];
        assert!(parse_chrome(truncated).is_err());
    }

    #[test]
    fn parser_handles_escapes() {
        let json = r#"{"traceEvents": [
            {"ph":"X","ts":1,"dur":2,"tid":0,
             "args":{"span_id":9,"kind":"forward","note":"a\"b\\cA\n"}}
        ]}"#;
        let (trace, _) = parse_chrome(json).expect("parse");
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.spans()[0].id, SpanId(9));
    }
}
