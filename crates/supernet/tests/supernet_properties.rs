//! Property tests of the search-space and exploration layer.

#![cfg(feature = "proptest-tests")]

use naspipe_supernet::evolution::{evolve, EvolutionConfig};
use naspipe_supernet::hybrid::{HybridSampler, HybridSpace};
use naspipe_supernet::layer::Domain;
use naspipe_supernet::rng::DetRng;
use naspipe_supernet::sampler::{ExplorationStrategy, UniformSampler};
use naspipe_supernet::space::SearchSpace;
use naspipe_supernet::subnet::{collision_probability, Subnet, SubnetId};
use proptest::prelude::*;

proptest! {
    /// Uniform sampling produces valid subnets with consecutive IDs for
    /// any space shape and seed.
    #[test]
    fn sampler_output_is_always_valid(
        blocks in 1u32..40,
        choices in 1u32..40,
        seed in 0u64..1_000,
        n in 1usize..40,
    ) {
        let space = SearchSpace::uniform(Domain::Nlp, blocks, choices);
        let mut sampler = UniformSampler::new(&space, seed);
        for i in 0..n {
            let s = sampler.next_subnet();
            prop_assert_eq!(s.seq_id(), SubnetId(i as u64));
            prop_assert!(s.is_valid_for(&space));
        }
    }

    /// The analytic collision probability matches the empirical sharing
    /// frequency within statistical tolerance.
    #[test]
    fn collision_probability_matches_empirics(
        blocks in 4u32..24,
        choices in 2u32..16,
        seed in 0u64..100,
    ) {
        let space = SearchSpace::uniform(Domain::Cv, blocks, choices);
        let mut sampler = UniformSampler::new(&space, seed);
        let subnets = sampler.take_subnets(120);
        let mut collisions = 0u32;
        let pairs = 60u32;
        for i in 0..pairs as usize {
            if subnets[2 * i].conflicts_with(&subnets[2 * i + 1]) {
                collisions += 1;
            }
        }
        let expected = collision_probability(blocks, choices);
        let observed = f64::from(collisions) / f64::from(pairs);
        // Binomial std-dev with n = 60 is at most ~0.065; allow 4 sigma.
        prop_assert!(
            (observed - expected).abs() < 0.27,
            "expected {expected:.2}, observed {observed:.2}"
        );
    }

    /// The deterministic RNG's `next_below` is unbiased enough: over many
    /// draws every residue class of a small modulus is hit.
    #[test]
    fn rng_covers_small_ranges(seed in 0u64..1_000, bound in 2u64..12) {
        let mut rng = DetRng::new(seed);
        let mut seen = vec![false; bound as usize];
        for _ in 0..(bound * 60) {
            seen[rng.next_below(bound) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    /// Evolution never emits an invalid architecture and its history is
    /// monotone for any configuration.
    #[test]
    fn evolution_invariants(
        population in 2usize..12,
        rounds in 1usize..40,
        seed in 0u64..100,
    ) {
        let space = SearchSpace::uniform(Domain::Nlp, 6, 5);
        let cfg = EvolutionConfig {
            population,
            tournament: (population / 2).max(1),
            rounds,
            seed,
        };
        let out = evolve(&space, cfg, |s: &Subnet| {
            -(s.choices().iter().map(|&c| f64::from(c)).sum::<f64>())
        });
        prop_assert!(out.best.subnet.is_valid_for(&space));
        prop_assert_eq!(out.evaluations, population + rounds);
        for w in out.history.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// Hybrid embedding is lossless: the member's choices can be read
    /// back from the union subnet, and cross-member subnets never share.
    #[test]
    fn hybrid_embedding_round_trips(
        a_blocks in 1u32..12,
        b_blocks in 1u32..12,
        seed in 0u64..100,
    ) {
        let a = SearchSpace::uniform(Domain::Nlp, a_blocks, 4);
        let b = SearchSpace::uniform(Domain::Nlp, b_blocks, 4);
        let hybrid = HybridSpace::new(&[&a, &b]);
        let mut sampler = HybridSampler::new(&hybrid, seed);
        let s0 = sampler.next_subnet();
        let s1 = sampler.next_subnet();
        prop_assert_eq!(hybrid.member_of(&s0), Some(0));
        prop_assert_eq!(hybrid.member_of(&s1), Some(1));
        prop_assert!(!s0.conflicts_with(&s1));
        let back: Vec<u32> = hybrid.member_range(0).map(|blk| s0.choices()[blk]).collect();
        let re_embedded = hybrid.embed(0, s0.seq_id(), &back);
        prop_assert_eq!(re_embedded, s0);
    }
}
