//! Supernet modelling for the NASPipe reproduction.
//!
//! A *supernet* embeds an entire neural-architecture search space into one
//! monolithic model: a sequence of [`ChoiceBlock`]s, each holding a set of
//! candidate layers. A *subnet* picks exactly one candidate per block and is
//! trained on one input batch, in the order produced by an exploration
//! strategy (uniform sampling as in SPOS, or regularised evolution).
//!
//! This crate provides:
//!
//! * the candidate-layer catalog with the compute/swap cost model calibrated
//!   against Table 5 of the paper ([`layer`]),
//! * the seven evaluation search spaces of Table 1 ([`space`]),
//! * subnets and their causal-dependency predicate ([`subnet`]),
//! * deterministic exploration strategies ([`sampler`], [`evolution`]),
//! * a splittable deterministic PRNG used everywhere reproducibility
//!   matters ([`rng`]).
//!
//! # Example
//!
//! ```
//! use naspipe_supernet::space::SearchSpace;
//! use naspipe_supernet::sampler::{ExplorationStrategy, UniformSampler};
//!
//! let space = SearchSpace::nlp_c2();
//! let mut sampler = UniformSampler::new(&space, 42);
//! let a = sampler.next_subnet();
//! let b = sampler.next_subnet();
//! assert_eq!(a.choices().len(), space.num_blocks());
//! // Chronologically close subnets in a large space rarely collide:
//! let shared = a.shared_blocks(&b).count();
//! assert!(shared <= space.num_blocks());
//! ```

pub mod evolution;
pub mod frontend;
pub mod hybrid;
pub mod layer;
pub mod profile;
pub mod rng;
pub mod sampler;
pub mod space;
pub mod subnet;

pub use layer::{LayerCost, LayerKind, LayerRef};
pub use sampler::{ExplorationStrategy, UniformSampler};
pub use space::{ChoiceBlock, SearchSpace, SpaceId};
pub use subnet::{Subnet, SubnetId};
