//! Regularised evolution search (Real et al.), the paper's default search
//! strategy once a supernet is trained.
//!
//! Evolution maintains a population of architectures. Each round it samples
//! a tournament, mutates the winner's architecture in one random block, and
//! retires the oldest member. Fitness is supplied by a caller-provided
//! evaluator (validation quality of the subnet under the trained supernet
//! weights), so the search itself is fully deterministic given the seed and
//! a deterministic evaluator.

use crate::rng::DetRng;
use crate::space::SearchSpace;
use crate::subnet::{Subnet, SubnetId};

/// Configuration of the regularised evolution loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// Population size (alive individuals).
    pub population: usize,
    /// Tournament sample size per round.
    pub tournament: usize,
    /// Number of evolution rounds after the initial population.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self {
            population: 32,
            tournament: 8,
            rounds: 128,
            seed: 0,
        }
    }
}

/// One evaluated architecture in the population.
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// The architecture (sequence ID records discovery order).
    pub subnet: Subnet,
    /// Fitness — higher is better.
    pub fitness: f64,
}

/// Outcome of an evolution search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The best individual ever evaluated.
    pub best: Individual,
    /// Total number of fitness evaluations performed.
    pub evaluations: usize,
    /// Best fitness after each round (monotone non-decreasing).
    pub history: Vec<f64>,
}

/// Runs regularised evolution over `space`, scoring candidates with
/// `evaluate`.
///
/// `evaluate` receives each candidate subnet and returns its fitness
/// (higher is better). The search is deterministic for a deterministic
/// evaluator and fixed config.
///
/// # Panics
///
/// Panics if `config.population == 0`, `config.tournament == 0`, or
/// `config.tournament > config.population`.
///
/// # Example
///
/// ```
/// use naspipe_supernet::evolution::{evolve, EvolutionConfig};
/// use naspipe_supernet::space::SearchSpace;
///
/// let space = SearchSpace::nlp_c3();
/// // Toy fitness: prefer low choice indices.
/// let outcome = evolve(&space, EvolutionConfig::default(), |s| {
///     -(s.choices().iter().map(|&c| c as f64).sum::<f64>())
/// });
/// assert!(outcome.evaluations > 0);
/// ```
pub fn evolve<F>(space: &SearchSpace, config: EvolutionConfig, mut evaluate: F) -> SearchOutcome
where
    F: FnMut(&Subnet) -> f64,
{
    assert!(config.population > 0, "population must be positive");
    assert!(config.tournament > 0, "tournament must be positive");
    assert!(
        config.tournament <= config.population,
        "tournament cannot exceed population"
    );

    let mut rng = DetRng::new(config.seed).split(0x45564f4c); // "EVOL"
    let mut next_id = 0u64;
    let sample = |rng: &mut DetRng, next_id: &mut u64| {
        let choices = space
            .blocks()
            .iter()
            .map(|b| rng.next_below(u64::from(b.num_choices())) as u32)
            .collect();
        let s = Subnet::new(SubnetId(*next_id), choices);
        *next_id += 1;
        s
    };

    let mut population: Vec<Individual> = Vec::with_capacity(config.population);
    for _ in 0..config.population {
        let subnet = sample(&mut rng, &mut next_id);
        let fitness = evaluate(&subnet);
        population.push(Individual { subnet, fitness });
    }
    let mut evaluations = population.len();
    let mut best = population
        .iter()
        .cloned()
        .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
        .expect("population is non-empty");

    let mut history = Vec::with_capacity(config.rounds);
    for _ in 0..config.rounds {
        // Tournament: sample indices without replacement.
        let mut idx: Vec<usize> = (0..population.len()).collect();
        rng.shuffle(&mut idx);
        let winner = idx[..config.tournament]
            .iter()
            .copied()
            .max_by(|&a, &b| population[a].fitness.total_cmp(&population[b].fitness))
            .expect("tournament is non-empty");

        // Mutate one block of the winner.
        let parent = population[winner].subnet.clone();
        let mut choices = parent.choices().to_vec();
        let block = rng.index(choices.len());
        let n = space.block(block).num_choices();
        if n > 1 {
            let mut c = rng.next_below(u64::from(n)) as u32;
            if c == choices[block] {
                c = (c + 1) % n;
            }
            choices[block] = c;
        }
        let child = Subnet::new(SubnetId(next_id), choices);
        next_id += 1;
        let fitness = evaluate(&child);
        evaluations += 1;
        if fitness > best.fitness {
            best = Individual {
                subnet: child.clone(),
                fitness,
            };
        }
        // Regularised: retire the oldest (front), append the child.
        population.remove(0);
        population.push(Individual {
            subnet: child,
            fitness,
        });
        history.push(best.fitness);
    }

    SearchOutcome {
        best,
        evaluations,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Domain;

    fn toy_space() -> SearchSpace {
        SearchSpace::uniform(Domain::Nlp, 6, 8)
    }

    /// Fitness peaked at all-zero choices.
    fn fitness(s: &Subnet) -> f64 {
        -(s.choices().iter().map(|&c| f64::from(c)).sum::<f64>())
    }

    #[test]
    fn evolution_is_deterministic() {
        let space = toy_space();
        let cfg = EvolutionConfig {
            seed: 5,
            ..Default::default()
        };
        let a = evolve(&space, cfg, fitness);
        let b = evolve(&space, cfg, fitness);
        assert_eq!(a.best.subnet.choices(), b.best.subnet.choices());
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn evolution_improves_over_random() {
        let space = toy_space();
        let cfg = EvolutionConfig {
            rounds: 300,
            ..Default::default()
        };
        let out = evolve(&space, cfg, fitness);
        // Random expectation is -6*3.5 = -21; evolution should do much better.
        assert!(out.best.fitness > -10.0, "best {}", out.best.fitness);
        assert_eq!(out.evaluations, cfg.population + cfg.rounds);
    }

    #[test]
    fn history_is_monotone() {
        let out = evolve(&toy_space(), EvolutionConfig::default(), fitness);
        for w in out.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn mutation_changes_exactly_one_block_or_none() {
        // Use a 2-choice space so mutation always flips.
        let space = SearchSpace::uniform(Domain::Cv, 5, 2);
        let out = evolve(
            &space,
            EvolutionConfig {
                rounds: 50,
                ..Default::default()
            },
            fitness,
        );
        assert!(out.best.subnet.is_valid_for(&space));
    }

    #[test]
    #[should_panic(expected = "tournament cannot exceed population")]
    fn oversized_tournament_panics() {
        evolve(
            &toy_space(),
            EvolutionConfig {
                population: 4,
                tournament: 8,
                rounds: 1,
                seed: 0,
            },
            fitness,
        );
    }
}
