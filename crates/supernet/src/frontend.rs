//! A Retiarii-style programming frontend.
//!
//! The paper's NASPipe sits *behind* a supernet programming framework:
//! Retiarii describes the search space (choice blocks of candidate
//! operators) and generates subnets "in a producer-consumer way, where
//! NASPipe is the consumer" (§4.1). This module provides the equivalent
//! surface:
//!
//! * [`SupernetBuilder`] — a fluent mutator-like API for declaring choice
//!   blocks of named candidate operators, producing a [`SearchSpace`]
//!   plus a name table;
//! * [`ExplorationSession`] — runs any [`ExplorationStrategy`] on a
//!   producer thread and hands subnets to the training system through a
//!   bounded channel, preserving the exploration order exactly.

use crate::layer::{candidate_cost, Domain, LayerCost, LayerKind};
use crate::sampler::ExplorationStrategy;
use crate::space::{ChoiceBlock, SearchSpace};
use crate::subnet::{Subnet, SubnetId};
use std::sync::mpsc;

/// One candidate operator in a choice block.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpec {
    name: String,
    kind: LayerKind,
    cost: LayerCost,
}

impl OpSpec {
    /// A named operator with the catalog cost of `kind`.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Self {
            name: name.into(),
            kind,
            cost: kind.profiled_cost(),
        }
    }

    /// A named operator with an explicit cost (custom profiling).
    pub fn with_cost(name: impl Into<String>, kind: LayerKind, cost: LayerCost) -> Self {
        Self {
            name: name.into(),
            kind,
            cost,
        }
    }

    /// The operator's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Fluent builder for a supernet search space with named blocks and
/// operators.
///
/// # Example
///
/// ```
/// use naspipe_supernet::frontend::{OpSpec, SupernetBuilder};
/// use naspipe_supernet::layer::{Domain, LayerKind};
///
/// let (space, names) = SupernetBuilder::new(Domain::Nlp)
///     .choice_block("embed", vec![
///         OpSpec::new("conv3x1", LayerKind::Conv3x1),
///         OpSpec::new("attention", LayerKind::Attention8Head),
///     ])
///     .repeat_catalog_blocks("body", 4, 8)
///     .build();
/// assert_eq!(space.num_blocks(), 5);
/// assert_eq!(names.block_name(0), "embed");
/// assert_eq!(names.op_name(0, 1), "attention");
/// ```
#[derive(Debug, Clone)]
pub struct SupernetBuilder {
    domain: Domain,
    blocks: Vec<(String, Vec<OpSpec>)>,
}

/// Name table produced by [`SupernetBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct NameTable {
    blocks: Vec<(String, Vec<String>)>,
}

impl NameTable {
    /// The declared name of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_name(&self, b: usize) -> &str {
        &self.blocks[b].0
    }

    /// The declared name of candidate `c` of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn op_name(&self, b: usize, c: usize) -> &str {
        &self.blocks[b].1[c]
    }

    /// Renders a subnet as `block=op` assignments (skipped blocks
    /// omitted) — human-readable architecture descriptions for logs.
    pub fn describe(&self, subnet: &Subnet) -> String {
        subnet
            .layers()
            .map(|l| {
                format!(
                    "{}={}",
                    self.block_name(l.block as usize),
                    self.op_name(l.block as usize, l.choice as usize)
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl SupernetBuilder {
    /// Starts a builder for `domain`.
    pub fn new(domain: Domain) -> Self {
        Self {
            domain,
            blocks: Vec::new(),
        }
    }

    /// Declares one choice block of named candidates.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn choice_block(mut self, name: impl Into<String>, ops: Vec<OpSpec>) -> Self {
        assert!(
            !ops.is_empty(),
            "a choice block needs at least one operator"
        );
        self.blocks.push((name.into(), ops));
        self
    }

    /// Declares `count` blocks named `prefix-0..` with `choices`
    /// candidates each from the domain's catalog (auto-named by kind).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `choices == 0`.
    pub fn repeat_catalog_blocks(mut self, prefix: &str, count: u32, choices: u32) -> Self {
        assert!(
            count > 0 && choices > 0,
            "count and choices must be positive"
        );
        for i in 0..count {
            let ops = (0..choices)
                .map(|c| {
                    let (kind, cost) = candidate_cost(self.domain, c);
                    OpSpec::with_cost(format!("{kind}#{c}"), kind, cost)
                })
                .collect();
            self.blocks.push((format!("{prefix}-{i}"), ops));
        }
        self
    }

    /// Finalises the space and its name table.
    ///
    /// # Panics
    ///
    /// Panics if no block was declared.
    pub fn build(self) -> (SearchSpace, NameTable) {
        assert!(
            !self.blocks.is_empty(),
            "a supernet needs at least one block"
        );
        let names = NameTable {
            blocks: self
                .blocks
                .iter()
                .map(|(n, ops)| (n.clone(), ops.iter().map(|o| o.name.clone()).collect()))
                .collect(),
        };
        let blocks = self
            .blocks
            .into_iter()
            .map(|(_, ops)| {
                ChoiceBlock::from_costs(ops.into_iter().map(|o| (o.kind, o.cost)).collect())
            })
            .collect();
        (SearchSpace::from_blocks(self.domain, blocks), names)
    }
}

/// A producer-consumer exploration session: the strategy runs on its own
/// thread (the "frontend", like Retiarii's exploration engine) and the
/// training system consumes subnets through a bounded channel.
///
/// The channel preserves order, so the consumer sees exactly the
/// strategy's exploration order — the total order CSP makes the parallel
/// training equivalent to.
#[derive(Debug)]
pub struct ExplorationSession {
    rx: mpsc::Receiver<Subnet>,
    next_id: u64,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ExplorationSession {
    /// Spawns `strategy` on a producer thread, generating `total` subnets
    /// with at most `capacity` buffered ahead of the consumer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn spawn<S>(mut strategy: S, total: u64, capacity: usize) -> Self
    where
        S: ExplorationStrategy + Send + 'static,
    {
        assert!(capacity > 0, "capacity must be positive");
        let (tx, rx) = mpsc::sync_channel(capacity);
        let start = strategy.next_seq_id().0;
        let handle = std::thread::spawn(move || {
            for _ in 0..total {
                if tx.send(strategy.next_subnet()).is_err() {
                    break; // consumer hung up early
                }
            }
        });
        Self {
            rx,
            next_id: start,
            handle: Some(handle),
        }
    }

    /// Collects all remaining subnets, joining the producer.
    pub fn drain(mut self) -> Vec<Subnet> {
        let mut all = Vec::new();
        while let Ok(s) = self.rx.recv() {
            all.push(s);
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        all
    }
}

impl ExplorationStrategy for ExplorationSession {
    /// # Panics
    ///
    /// Panics if the producer finished and the session is exhausted.
    fn next_subnet(&mut self) -> Subnet {
        let s = self.rx.recv().expect("exploration session exhausted");
        self.next_id = s.seq_id().0 + 1;
        s
    }

    fn next_seq_id(&self) -> SubnetId {
        SubnetId(self.next_id)
    }
}

impl Drop for ExplorationSession {
    fn drop(&mut self) {
        // Unblock and join the producer: dropping rx first would leave it
        // parked on send; take the handle and let the send error out.
        if let Some(h) = self.handle.take() {
            // Drain whatever is buffered so the producer can observe the
            // hang-up promptly, then join.
            while self.rx.try_recv().is_ok() {}
            drop(std::mem::replace(&mut self.rx, {
                let (_, rx) = mpsc::channel();
                rx
            }));
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::UniformSampler;

    #[test]
    fn builder_produces_named_space() {
        let (space, names) = SupernetBuilder::new(Domain::Cv)
            .choice_block(
                "stem",
                vec![
                    OpSpec::new("conv3x3", LayerKind::Conv3x3),
                    OpSpec::new("sep3x3", LayerKind::SepConv3x3),
                ],
            )
            .repeat_catalog_blocks("cell", 3, 4)
            .build();
        assert_eq!(space.num_blocks(), 4);
        assert_eq!(space.block(0).num_choices(), 2);
        assert_eq!(names.block_name(0), "stem");
        assert_eq!(names.block_name(3), "cell-2");
        assert_eq!(names.op_name(0, 0), "conv3x3");
    }

    #[test]
    fn describe_renders_assignments() {
        let (space, names) = SupernetBuilder::new(Domain::Nlp)
            .choice_block(
                "enc",
                vec![
                    OpSpec::new("light", LayerKind::LightConv5x1),
                    OpSpec::new("attn", LayerKind::Attention8Head),
                ],
            )
            .choice_block(
                "dec",
                vec![
                    OpSpec::new("conv", LayerKind::Conv3x1),
                    OpSpec::new("sep", LayerKind::SepConv7x1),
                ],
            )
            .build();
        let s = Subnet::new(SubnetId(0), vec![1, 0]);
        assert!(s.is_valid_for(&space));
        assert_eq!(names.describe(&s), "enc=attn dec=conv");
    }

    #[test]
    fn custom_cost_is_respected() {
        let cost = LayerCost {
            fwd_ms: 1.0,
            bwd_ms: 2.0,
            swap_ms: 0.5,
            param_bytes: 1_000,
        };
        let (space, _) = SupernetBuilder::new(Domain::Nlp)
            .choice_block(
                "b",
                vec![OpSpec::with_cost("tiny", LayerKind::LightConv5x1, cost)],
            )
            .build();
        assert_eq!(space.block(0).cost(0), cost);
    }

    #[test]
    fn session_preserves_exploration_order() {
        let space = SearchSpace::uniform(Domain::Nlp, 6, 4);
        let reference = UniformSampler::new(&space, 3);
        let mut direct = UniformSampler::new(&space, 3);
        let mut session = ExplorationSession::spawn(reference, 20, 4);
        for i in 0..20u64 {
            assert_eq!(session.next_seq_id(), SubnetId(i));
            assert_eq!(session.next_subnet(), direct.next_subnet());
        }
    }

    #[test]
    fn session_drain_collects_everything() {
        let space = SearchSpace::uniform(Domain::Cv, 4, 3);
        let session = ExplorationSession::spawn(UniformSampler::new(&space, 5), 12, 3);
        let all = session.drain();
        assert_eq!(all.len(), 12);
        assert!(all
            .iter()
            .enumerate()
            .all(|(i, s)| s.seq_id().0 == i as u64));
    }

    #[test]
    fn dropping_session_early_does_not_hang() {
        let space = SearchSpace::uniform(Domain::Cv, 4, 3);
        let mut session = ExplorationSession::spawn(UniformSampler::new(&space, 5), 1_000, 2);
        let _ = session.next_subnet();
        drop(session); // must join the producer without deadlock
    }

    #[test]
    #[should_panic(expected = "at least one operator")]
    fn empty_block_panics() {
        SupernetBuilder::new(Domain::Nlp).choice_block("x", vec![]);
    }
}
