//! Search-space definitions, including the seven evaluation spaces of
//! Table 1.
//!
//! A [`SearchSpace`] is a sequence of [`ChoiceBlock`]s; each block holds `n`
//! candidate layers and every subnet selects exactly one candidate per
//! block (per-choice-block uniform sampling, as in SPOS).

use crate::layer::{candidate_cost, Domain, LayerCost, LayerKind, LayerRef};
use std::fmt;

/// Names of the seven default evaluation search spaces (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpaceId {
    /// NLP, 48 blocks x 96 candidates (Evolved Transformer, WNMT).
    NlpC0,
    /// NLP, 48 blocks x 72 candidates.
    NlpC1,
    /// NLP, 48 blocks x 48 candidates.
    NlpC2,
    /// NLP, 48 blocks x 24 candidates.
    NlpC3,
    /// CV, 32 blocks x 48 candidates (AmoebaNet, ImageNet).
    CvC1,
    /// CV, 32 blocks x 24 candidates.
    CvC2,
    /// CV, 32 blocks x 12 candidates.
    CvC3,
}

impl SpaceId {
    /// All seven spaces in Table 1 order.
    pub const ALL: [SpaceId; 7] = [
        SpaceId::NlpC0,
        SpaceId::NlpC1,
        SpaceId::NlpC2,
        SpaceId::NlpC3,
        SpaceId::CvC1,
        SpaceId::CvC2,
        SpaceId::CvC3,
    ];

    /// The six spaces used by the Table 2 / Table 3 experiments (NLP.c0 is
    /// excluded there because GPipe/PipeDream cannot hold it).
    pub const TABLE2: [SpaceId; 6] = [
        SpaceId::NlpC1,
        SpaceId::NlpC2,
        SpaceId::NlpC3,
        SpaceId::CvC1,
        SpaceId::CvC2,
        SpaceId::CvC3,
    ];

    /// The dataset name used by the paper for this space.
    pub fn dataset(self) -> &'static str {
        match self.domain() {
            Domain::Nlp => "WNMT",
            Domain::Cv => "ImageNet",
        }
    }

    /// Task domain of the space.
    pub fn domain(self) -> Domain {
        match self {
            SpaceId::NlpC0 | SpaceId::NlpC1 | SpaceId::NlpC2 | SpaceId::NlpC3 => Domain::Nlp,
            _ => Domain::Cv,
        }
    }

    /// `(choice blocks, candidates per block)` per Table 1.
    pub fn shape(self) -> (u32, u32) {
        match self {
            SpaceId::NlpC0 => (48, 96),
            SpaceId::NlpC1 => (48, 72),
            SpaceId::NlpC2 => (48, 48),
            SpaceId::NlpC3 => (48, 24),
            SpaceId::CvC1 => (32, 48),
            SpaceId::CvC2 => (32, 24),
            SpaceId::CvC3 => (32, 12),
        }
    }

    /// Default pipeline input batch size NASPipe uses on this space
    /// (Table 2 "B.S." column).
    pub fn default_batch(self) -> u32 {
        match self.domain() {
            Domain::Nlp => 192,
            Domain::Cv => 64,
        }
    }
}

impl fmt::Display for SpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SpaceId::NlpC0 => "NLP.c0",
            SpaceId::NlpC1 => "NLP.c1",
            SpaceId::NlpC2 => "NLP.c2",
            SpaceId::NlpC3 => "NLP.c3",
            SpaceId::CvC1 => "CV.c1",
            SpaceId::CvC2 => "CV.c2",
            SpaceId::CvC3 => "CV.c3",
        };
        f.write_str(name)
    }
}

/// One choice block: a set of candidate layers, exactly one of which is
/// activated by each subnet.
#[derive(Debug, Clone, PartialEq)]
pub struct ChoiceBlock {
    kinds: Vec<LayerKind>,
    costs: Vec<LayerCost>,
}

impl ChoiceBlock {
    /// Builds a block with `num_choices` candidates drawn from `domain`'s
    /// layer catalog.
    ///
    /// # Panics
    ///
    /// Panics if `num_choices == 0`.
    pub fn from_catalog(domain: Domain, num_choices: u32) -> Self {
        assert!(
            num_choices > 0,
            "a choice block needs at least one candidate"
        );
        let (kinds, costs) = (0..num_choices).map(|c| candidate_cost(domain, c)).unzip();
        Self { kinds, costs }
    }

    /// Builds a block from explicit candidate costs (for tests and custom
    /// spaces).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn from_costs(candidates: Vec<(LayerKind, LayerCost)>) -> Self {
        assert!(
            !candidates.is_empty(),
            "a choice block needs at least one candidate"
        );
        let (kinds, costs) = candidates.into_iter().unzip();
        Self { kinds, costs }
    }

    /// Number of candidate layers in this block.
    pub fn num_choices(&self) -> u32 {
        self.kinds.len() as u32
    }

    /// Operator family of candidate `choice`.
    ///
    /// # Panics
    ///
    /// Panics if `choice` is out of range.
    pub fn kind(&self, choice: u32) -> LayerKind {
        self.kinds[choice as usize]
    }

    /// Cost of candidate `choice` at the profiled reference batch size.
    ///
    /// # Panics
    ///
    /// Panics if `choice` is out of range.
    pub fn cost(&self, choice: u32) -> LayerCost {
        self.costs[choice as usize]
    }

    /// Total parameter bytes across all candidates of this block.
    pub fn param_bytes(&self) -> u64 {
        self.costs.iter().map(|c| c.param_bytes).sum()
    }
}

/// A supernet search space: an ordered sequence of choice blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    id: Option<SpaceId>,
    domain: Domain,
    blocks: Vec<ChoiceBlock>,
}

impl SearchSpace {
    /// Builds one of the seven named evaluation spaces.
    pub fn from_id(id: SpaceId) -> Self {
        let (blocks, choices) = id.shape();
        let domain = id.domain();
        Self {
            id: Some(id),
            domain,
            blocks: (0..blocks)
                .map(|_| ChoiceBlock::from_catalog(domain, choices))
                .collect(),
        }
    }

    /// Shorthand for [`SearchSpace::from_id`]`(SpaceId::NlpC0)`.
    pub fn nlp_c0() -> Self {
        Self::from_id(SpaceId::NlpC0)
    }
    /// Shorthand for [`SearchSpace::from_id`]`(SpaceId::NlpC1)`.
    pub fn nlp_c1() -> Self {
        Self::from_id(SpaceId::NlpC1)
    }
    /// Shorthand for [`SearchSpace::from_id`]`(SpaceId::NlpC2)`.
    pub fn nlp_c2() -> Self {
        Self::from_id(SpaceId::NlpC2)
    }
    /// Shorthand for [`SearchSpace::from_id`]`(SpaceId::NlpC3)`.
    pub fn nlp_c3() -> Self {
        Self::from_id(SpaceId::NlpC3)
    }
    /// Shorthand for [`SearchSpace::from_id`]`(SpaceId::CvC1)`.
    pub fn cv_c1() -> Self {
        Self::from_id(SpaceId::CvC1)
    }
    /// Shorthand for [`SearchSpace::from_id`]`(SpaceId::CvC2)`.
    pub fn cv_c2() -> Self {
        Self::from_id(SpaceId::CvC2)
    }
    /// Shorthand for [`SearchSpace::from_id`]`(SpaceId::CvC3)`.
    pub fn cv_c3() -> Self {
        Self::from_id(SpaceId::CvC3)
    }

    /// Builds a uniform custom space (`blocks` x `choices`) over `domain`'s
    /// catalog.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0` or `choices == 0`.
    pub fn uniform(domain: Domain, blocks: u32, choices: u32) -> Self {
        assert!(blocks > 0, "a search space needs at least one block");
        Self {
            id: None,
            domain,
            blocks: (0..blocks)
                .map(|_| ChoiceBlock::from_catalog(domain, choices))
                .collect(),
        }
    }

    /// Builds a space from explicit blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty.
    pub fn from_blocks(domain: Domain, blocks: Vec<ChoiceBlock>) -> Self {
        assert!(
            !blocks.is_empty(),
            "a search space needs at least one block"
        );
        Self {
            id: None,
            domain,
            blocks,
        }
    }

    /// The named identity of this space, if it is one of Table 1's.
    pub fn id(&self) -> Option<SpaceId> {
        self.id
    }

    /// Task domain of the space.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Number of choice blocks (`m` in the paper).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The choice blocks in order.
    pub fn blocks(&self) -> &[ChoiceBlock] {
        &self.blocks
    }

    /// One block by index.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn block(&self, block: usize) -> &ChoiceBlock {
        &self.blocks[block]
    }

    /// Cost of the layer identified by `layer` at the profiled reference
    /// batch.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_cost(&self, layer: LayerRef) -> LayerCost {
        self.blocks[layer.block as usize].cost(layer.choice)
    }

    /// Total parameter bytes of the whole supernet.
    pub fn supernet_param_bytes(&self) -> u64 {
        self.blocks.iter().map(ChoiceBlock::param_bytes).sum()
    }

    /// Number of candidate architectures (`n^m`), saturating at
    /// `f64::INFINITY` representable values.
    pub fn cardinality_log10(&self) -> f64 {
        self.blocks
            .iter()
            .map(|b| f64::from(b.num_choices()).log10())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        for id in SpaceId::ALL {
            let space = SearchSpace::from_id(id);
            let (blocks, choices) = id.shape();
            assert_eq!(space.num_blocks() as u32, blocks);
            assert!(space.blocks().iter().all(|b| b.num_choices() == choices));
            assert_eq!(space.id(), Some(id));
        }
    }

    #[test]
    fn nlp_supernet_larger_than_subnet_by_choices() {
        let space = SearchSpace::nlp_c1();
        let total = space.supernet_param_bytes();
        // One subnet averages total / choices-per-block.
        let per_subnet_estimate = total / 72;
        // Paper: subnet ~1.3 GB, supernet ~tens of GB.
        assert!(per_subnet_estimate > 500 * 1_048_576);
        assert!(total > 40 * 1_073_741_824);
    }

    #[test]
    fn larger_spaces_have_more_parameters() {
        let c0 = SearchSpace::nlp_c0().supernet_param_bytes();
        let c1 = SearchSpace::nlp_c1().supernet_param_bytes();
        let c2 = SearchSpace::nlp_c2().supernet_param_bytes();
        let c3 = SearchSpace::nlp_c3().supernet_param_bytes();
        assert!(c0 > c1 && c1 > c2 && c2 > c3);
    }

    #[test]
    fn cardinality_grows_with_choices() {
        let big = SearchSpace::nlp_c0().cardinality_log10();
        let small = SearchSpace::nlp_c3().cardinality_log10();
        assert!(big > small);
        // 96^48 has ~95 digits.
        assert!((90.0..100.0).contains(&big));
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(SpaceId::NlpC0.to_string(), "NLP.c0");
        assert_eq!(SpaceId::CvC3.to_string(), "CV.c3");
        assert_eq!(SpaceId::NlpC0.dataset(), "WNMT");
        assert_eq!(SpaceId::CvC1.dataset(), "ImageNet");
    }

    #[test]
    fn default_batches_match_table2() {
        assert_eq!(SpaceId::NlpC1.default_batch(), 192);
        assert_eq!(SpaceId::CvC1.default_batch(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_block_panics() {
        ChoiceBlock::from_catalog(Domain::Nlp, 0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_space_panics() {
        SearchSpace::uniform(Domain::Nlp, 0, 4);
    }
}
