//! Pre-profiled per-layer statistics used by the pipeline partitioner and
//! the discrete-event simulator.
//!
//! NASPipe partitions each subnet so every stage has roughly the same
//! execution time "according to pre-profiled statistics of each layer"
//! (§3.2). [`ProfiledSpace`] captures those statistics for a search space
//! at a concrete batch size; lookups are O(1) per layer.

use crate::layer::{LayerCost, LayerRef};
use crate::space::SearchSpace;
use crate::subnet::Subnet;

/// Per-layer profiled costs for a search space at a fixed batch size.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledSpace {
    batch: u32,
    // costs[block][choice], rescaled to `batch`.
    costs: Vec<Vec<LayerCost>>,
}

impl ProfiledSpace {
    /// Profiles every candidate layer of `space` at input batch `batch`.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn new(space: &SearchSpace, batch: u32) -> Self {
        assert!(batch > 0, "batch must be positive");
        let costs = space
            .blocks()
            .iter()
            .map(|b| {
                (0..b.num_choices())
                    .map(|c| {
                        let raw = b.cost(c);
                        let reference = b.kind(c).reference_batch();
                        raw.at_batch(reference, batch)
                    })
                    .collect()
            })
            .collect();
        Self { batch, costs }
    }

    /// The batch size this profile was taken at.
    pub fn batch(&self) -> u32 {
        self.batch
    }

    /// Number of choice blocks covered.
    pub fn num_blocks(&self) -> usize {
        self.costs.len()
    }

    /// Number of candidate choices profiled for `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn num_choices(&self, block: usize) -> u32 {
        self.costs[block].len() as u32
    }

    /// Mean fwd+bwd compute milliseconds across the candidates of `block`
    /// — the cost a static partitioner balances when the subnet is not
    /// known in advance.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn mean_block_ms(&self, block: usize) -> f64 {
        let n = self.costs[block].len();
        self.costs[block].iter().map(|c| c.total_ms()).sum::<f64>() / n as f64
    }

    /// Cost of one layer at this profile's batch size.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn cost(&self, layer: LayerRef) -> LayerCost {
        self.costs[layer.block as usize][layer.choice as usize]
    }

    /// Forward+backward compute milliseconds of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn compute_ms(&self, layer: LayerRef) -> f64 {
        self.cost(layer).total_ms()
    }

    /// Per-block compute cost (fwd+bwd ms) of a subnet, one entry per
    /// block; skipped blocks cost zero.
    ///
    /// # Panics
    ///
    /// Panics if the subnet does not match the profiled space.
    pub fn subnet_block_costs(&self, subnet: &Subnet) -> Vec<f64> {
        (0..subnet.num_layers())
            .map(|b| {
                if subnet.skips(b) {
                    0.0
                } else {
                    self.compute_ms(subnet.layer(b))
                }
            })
            .collect()
    }

    /// Total compute time of a subnet at this batch size, ms.
    ///
    /// # Panics
    ///
    /// Panics if the subnet does not match the profiled space.
    pub fn subnet_total_ms(&self, subnet: &Subnet) -> f64 {
        self.subnet_block_costs(subnet).iter().sum()
    }

    /// Total parameter bytes of a subnet's activated layers.
    ///
    /// # Panics
    ///
    /// Panics if the subnet does not match the profiled space.
    pub fn subnet_param_bytes(&self, subnet: &Subnet) -> u64 {
        subnet.layers().map(|l| self.cost(l).param_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Domain;
    use crate::subnet::SubnetId;

    #[test]
    fn profile_scales_with_batch() {
        let space = SearchSpace::uniform(Domain::Nlp, 4, 4);
        let p96 = ProfiledSpace::new(&space, 96);
        let p192 = ProfiledSpace::new(&space, 192);
        let l = LayerRef::new(0, 0);
        assert!((p192.compute_ms(l) - 2.0 * p96.compute_ms(l)).abs() < 1e-9);
        // Swap costs are batch invariant.
        assert_eq!(p96.cost(l).swap_ms, p192.cost(l).swap_ms);
    }

    #[test]
    fn subnet_totals_match_sums() {
        let space = SearchSpace::uniform(Domain::Cv, 5, 4);
        let profile = ProfiledSpace::new(&space, 64);
        let s = Subnet::new(SubnetId(0), vec![0, 1, 2, 3, 0]);
        let blocks = profile.subnet_block_costs(&s);
        assert_eq!(blocks.len(), 5);
        let total: f64 = blocks.iter().sum();
        assert!((profile.subnet_total_ms(&s) - total).abs() < 1e-9);
        assert!(profile.subnet_param_bytes(&s) > 0);
    }

    #[test]
    fn reference_batch_reproduces_catalog() {
        let space = SearchSpace::uniform(Domain::Nlp, 1, 4);
        let profile = ProfiledSpace::new(&space, 192);
        let l = LayerRef::new(0, 0);
        assert!((profile.cost(l).fwd_ms - space.layer_cost(l).fwd_ms).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let space = SearchSpace::uniform(Domain::Nlp, 1, 1);
        ProfiledSpace::new(&space, 0);
    }
}
