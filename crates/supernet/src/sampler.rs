//! Exploration strategies that generate the ordered subnet stream.
//!
//! The exploration algorithm runs *above* the training system (in the
//! Retiarii frontend in the paper) and produces subnets in a total order;
//! the training system must make the parallel execution equivalent to that
//! order. [`UniformSampler`] reproduces SPOS's per-choice-block uniform
//! sampling, the paper's default generation method.

use crate::rng::DetRng;
use crate::space::SearchSpace;
use crate::subnet::{Subnet, SubnetId};

/// A source of subnets in exploration order.
///
/// Implementations must be deterministic: the same construction parameters
/// must yield the same subnet stream.
pub trait ExplorationStrategy {
    /// Produces the next subnet in the total order.
    fn next_subnet(&mut self) -> Subnet;

    /// Sequence ID the next call to [`next_subnet`](Self::next_subnet)
    /// will assign.
    fn next_seq_id(&self) -> SubnetId;

    /// Collects the next `n` subnets.
    fn take_subnets(&mut self, n: usize) -> Vec<Subnet> {
        (0..n).map(|_| self.next_subnet()).collect()
    }
}

/// SPOS-style uniform sampling: each block's choice is drawn independently
/// and uniformly.
#[derive(Debug, Clone)]
pub struct UniformSampler {
    choices_per_block: Vec<u32>,
    rng: DetRng,
    next_id: u64,
}

impl UniformSampler {
    /// Creates a sampler over `space` seeded with `seed`.
    pub fn new(space: &SearchSpace, seed: u64) -> Self {
        Self {
            choices_per_block: space.blocks().iter().map(|b| b.num_choices()).collect(),
            rng: DetRng::new(seed).split(0x5350_4f53), // "SPOS"
            next_id: 0,
        }
    }
}

impl ExplorationStrategy for UniformSampler {
    fn next_subnet(&mut self) -> Subnet {
        let choices = self
            .choices_per_block
            .iter()
            .map(|&n| self.rng.next_below(u64::from(n)) as u32)
            .collect();
        let id = SubnetId(self.next_id);
        self.next_id += 1;
        Subnet::new(id, choices)
    }

    fn next_seq_id(&self) -> SubnetId {
        SubnetId(self.next_id)
    }
}

/// Replays a fixed, pre-computed subnet list (useful for tests and for
/// feeding identical exploration orders to different training systems).
#[derive(Debug, Clone)]
pub struct ReplayStrategy {
    subnets: std::vec::IntoIter<Subnet>,
    next_id: u64,
}

impl ReplayStrategy {
    /// Wraps an explicit subnet list.
    ///
    /// # Panics
    ///
    /// Panics if the subnets are not in consecutive sequence-ID order
    /// starting at the first element's ID.
    pub fn new(subnets: Vec<Subnet>) -> Self {
        let start = subnets.first().map(|s| s.seq_id().0).unwrap_or(0);
        for (i, s) in subnets.iter().enumerate() {
            assert_eq!(
                s.seq_id().0,
                start + i as u64,
                "replayed subnets must have consecutive sequence IDs"
            );
        }
        Self {
            next_id: start,
            subnets: subnets.into_iter(),
        }
    }
}

impl ExplorationStrategy for ReplayStrategy {
    /// # Panics
    ///
    /// Panics when the replay list is exhausted.
    fn next_subnet(&mut self) -> Subnet {
        let s = self.subnets.next().expect("replay strategy exhausted");
        self.next_id = s.seq_id().0 + 1;
        s
    }

    fn next_seq_id(&self) -> SubnetId {
        SubnetId(self.next_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Domain;

    #[test]
    fn uniform_sampler_is_deterministic() {
        let space = SearchSpace::nlp_c3();
        let mut a = UniformSampler::new(&space, 99);
        let mut b = UniformSampler::new(&space, 99);
        for _ in 0..50 {
            assert_eq!(a.next_subnet(), b.next_subnet());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let space = SearchSpace::nlp_c3();
        let mut a = UniformSampler::new(&space, 1);
        let mut b = UniformSampler::new(&space, 2);
        let equal = (0..20)
            .filter(|_| a.next_subnet() == b.next_subnet())
            .count();
        assert!(equal < 2);
    }

    #[test]
    fn seq_ids_are_consecutive() {
        let space = SearchSpace::uniform(Domain::Cv, 4, 4);
        let mut s = UniformSampler::new(&space, 7);
        for i in 0..10 {
            assert_eq!(s.next_seq_id(), SubnetId(i));
            assert_eq!(s.next_subnet().seq_id(), SubnetId(i));
        }
    }

    #[test]
    fn sampled_subnets_are_valid() {
        let space = SearchSpace::cv_c2();
        let mut s = UniformSampler::new(&space, 4);
        for _ in 0..100 {
            assert!(s.next_subnet().is_valid_for(&space));
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let space = SearchSpace::uniform(Domain::Nlp, 1, 4);
        let mut s = UniformSampler::new(&space, 17);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[s.next_subnet().choices()[0] as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn replay_returns_exact_list() {
        let list = vec![
            Subnet::new(SubnetId(0), vec![1, 2]),
            Subnet::new(SubnetId(1), vec![0, 0]),
        ];
        let mut r = ReplayStrategy::new(list.clone());
        assert_eq!(r.next_subnet(), list[0]);
        assert_eq!(r.next_seq_id(), SubnetId(1));
        assert_eq!(r.next_subnet(), list[1]);
    }

    #[test]
    #[should_panic(expected = "consecutive sequence IDs")]
    fn replay_rejects_gaps() {
        ReplayStrategy::new(vec![
            Subnet::new(SubnetId(0), vec![1]),
            Subnet::new(SubnetId(2), vec![1]),
        ]);
    }

    #[test]
    fn take_subnets_collects() {
        let space = SearchSpace::uniform(Domain::Nlp, 2, 3);
        let mut s = UniformSampler::new(&space, 0);
        let v = s.take_subnets(5);
        assert_eq!(v.len(), 5);
        assert_eq!(v[4].seq_id(), SubnetId(4));
    }
}
