//! Deterministic, splittable pseudo-random number generation.
//!
//! Reproducibility (Definition 1 in the paper) requires every source of
//! randomness to be a pure function of the user-provided seed. We therefore
//! avoid platform- or version-dependent generators and implement
//! SplitMix64 (for seeding / splitting) feeding a xoshiro256** core, both of
//! which are fully specified algorithms with stable output forever.

/// A deterministic PRNG (xoshiro256** seeded via SplitMix64).
///
/// The same seed always produces the same stream, on every platform and
/// every release of this crate.
///
/// # Example
///
/// ```
/// use naspipe_supernet::rng::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Derives an independent child generator labelled by `stream`.
    ///
    /// Two children with different labels produce uncorrelated streams;
    /// the parent is not advanced.
    pub fn split(&self, stream: u64) -> Self {
        let mut sm = self.state[0] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { state }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits give a dyadic rational in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let hits = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn split_is_deterministic_and_independent() {
        let root = DetRng::new(9);
        let mut c1 = root.split(0);
        let mut c1_again = root.split(0);
        let mut c2 = root.split(1);
        assert_eq!(c1.next_u64(), c1_again.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::new(77);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = DetRng::new(5);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).next_below(0);
    }
}
