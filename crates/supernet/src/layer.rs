//! Candidate-layer catalog and cost model.
//!
//! The paper profiles eight representative layer kinds (Table 5): four from
//! the Evolved-Transformer NLP space at input size (192, 1024) and four from
//! the AmoebaNet CV space at input size (64, 112, 112). Each kind carries a
//! forward/backward compute time and a CPU→GPU swap time; swap time is the
//! parameter size divided by the PCIe 3.0 x16 bandwidth of the testbed
//! (15 760 MB/s), which lets us recover parameter sizes from Table 5.
//!
//! Choice blocks with more candidates than there are base kinds cycle
//! through the kinds with a deterministic per-choice scale factor, so every
//! candidate in a block has distinct-but-plausible costs. This mirrors the
//! paper's setup where candidates are variants (kernel sizes, expansion
//! ratios) of a handful of operator families.

use std::fmt;

/// PCIe 3.0 x16 host-to-device bandwidth of the paper's testbed, in
/// megabytes per second.
pub const PCIE_BANDWIDTH_MB_PER_S: f64 = 15_760.0;

/// Task domain a search space targets. Determines which base layer kinds
/// its choice blocks draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Natural-language processing (Evolved-Transformer space, WNMT data).
    Nlp,
    /// Computer vision (AmoebaNet space, ImageNet data).
    Cv,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Nlp => f.write_str("NLP"),
            Domain::Cv => f.write_str("CV"),
        }
    }
}

/// One of the eight profiled operator families of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// NLP: 3x1 convolution.
    Conv3x1,
    /// NLP: separable 7x1 convolution.
    SepConv7x1,
    /// NLP: lightweight 5x1 convolution.
    LightConv5x1,
    /// NLP: 8-head self-attention.
    Attention8Head,
    /// CV: 3x3 convolution.
    Conv3x3,
    /// CV: separable 3x3 convolution.
    SepConv3x3,
    /// CV: separable 5x5 convolution.
    SepConv5x5,
    /// CV: dilated 3x3 convolution.
    DilConv3x3,
}

impl LayerKind {
    /// The four base kinds of the given domain, in catalog order.
    pub fn base_kinds(domain: Domain) -> [LayerKind; 4] {
        match domain {
            Domain::Nlp => [
                LayerKind::Conv3x1,
                LayerKind::SepConv7x1,
                LayerKind::LightConv5x1,
                LayerKind::Attention8Head,
            ],
            Domain::Cv => [
                LayerKind::Conv3x3,
                LayerKind::SepConv3x3,
                LayerKind::SepConv5x5,
                LayerKind::DilConv3x3,
            ],
        }
    }

    /// Profiled cost of this kind at the paper's reference input size
    /// (Table 5), per input batch.
    pub fn profiled_cost(self) -> LayerCost {
        // (fwd ms, bwd ms, swap ms) straight from Table 5.
        let (fwd_ms, bwd_ms, swap_ms) = match self {
            LayerKind::Conv3x1 => (5.0, 10.0, 1.76),
            LayerKind::SepConv7x1 => (4.2, 5.7, 0.56),
            LayerKind::LightConv5x1 => (0.68, 1.4, 0.03),
            LayerKind::Attention8Head => (7.9, 13.8, 2.07),
            LayerKind::Conv3x3 => (7.9, 13.8, 4.6),
            LayerKind::SepConv3x3 => (2.8, 4.0, 0.68),
            LayerKind::SepConv5x5 => (6.7, 9.9, 2.04),
            LayerKind::DilConv3x3 => (2.5, 3.4, 0.58),
        };
        let param_bytes = (swap_ms / 1_000.0 * PCIE_BANDWIDTH_MB_PER_S * 1_048_576.0) as u64;
        LayerCost {
            fwd_ms,
            bwd_ms,
            swap_ms,
            param_bytes,
        }
    }

    /// Reference batch size the Table 5 profile was taken at.
    pub fn reference_batch(self) -> u32 {
        match self {
            LayerKind::Conv3x1
            | LayerKind::SepConv7x1
            | LayerKind::LightConv5x1
            | LayerKind::Attention8Head => 192,
            _ => 64,
        }
    }

    /// Per-sample activation footprint in bytes at the reference input
    /// size, used by the memory model to derive supported batch sizes.
    pub fn activation_bytes_per_sample(self) -> u64 {
        match self {
            // (seq=?, hidden=1024) activations, fp32; attention keeps
            // additional per-head score tensors.
            LayerKind::Conv3x1 => 1024 * 4 * 2,
            LayerKind::SepConv7x1 => 1024 * 4 * 2,
            LayerKind::LightConv5x1 => 1024 * 4,
            LayerKind::Attention8Head => 1024 * 4 * 4,
            // (112 x 112 x C) feature maps, fp32.
            LayerKind::Conv3x3 => 112 * 112 * 4 * 4,
            LayerKind::SepConv3x3 => 112 * 112 * 4 * 2,
            LayerKind::SepConv5x5 => 112 * 112 * 4 * 3,
            LayerKind::DilConv3x3 => 112 * 112 * 4 * 2,
        }
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LayerKind::Conv3x1 => "Conv 3x1",
            LayerKind::SepConv7x1 => "Sep Conv 7x1",
            LayerKind::LightConv5x1 => "Light Conv 5x1",
            LayerKind::Attention8Head => "8 Head Attention",
            LayerKind::Conv3x3 => "Conv 3x3",
            LayerKind::SepConv3x3 => "Sep Conv 3x3",
            LayerKind::SepConv5x5 => "Sep Conv 5x5",
            LayerKind::DilConv3x3 => "Dil Conv 3x3",
        };
        f.write_str(name)
    }
}

/// Compute and transfer costs of one candidate layer for one input batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayerCost {
    /// Forward-pass time in milliseconds.
    pub fwd_ms: f64,
    /// Backward-pass time in milliseconds (includes the optimizer step).
    pub bwd_ms: f64,
    /// Time to swap the parameters CPU→GPU over PCIe, in milliseconds.
    pub swap_ms: f64,
    /// Parameter size in bytes.
    pub param_bytes: u64,
}

impl LayerCost {
    /// Total compute time (forward + backward) in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.fwd_ms + self.bwd_ms
    }

    /// Scales every cost component by `factor` (candidate variants).
    pub fn scaled(&self, factor: f64) -> LayerCost {
        LayerCost {
            fwd_ms: self.fwd_ms * factor,
            bwd_ms: self.bwd_ms * factor,
            swap_ms: self.swap_ms * factor,
            param_bytes: (self.param_bytes as f64 * factor) as u64,
        }
    }

    /// Compute cost rescaled linearly from the profiled reference batch to
    /// `batch` samples; swap cost and parameter bytes are batch-invariant.
    pub fn at_batch(&self, reference_batch: u32, batch: u32) -> LayerCost {
        let ratio = f64::from(batch) / f64::from(reference_batch);
        LayerCost {
            fwd_ms: self.fwd_ms * ratio,
            bwd_ms: self.bwd_ms * ratio,
            swap_ms: self.swap_ms,
            param_bytes: self.param_bytes,
        }
    }
}

/// Identifies one candidate layer inside a supernet: choice `choice` of
/// block `block`.
///
/// Two subnets share parameters exactly when they contain an identical
/// `LayerRef`; this is the unit of the causal-dependency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerRef {
    /// Index of the choice block within the supernet.
    pub block: u32,
    /// Index of the candidate within the block.
    pub choice: u32,
}

impl LayerRef {
    /// Creates a reference to candidate `choice` of block `block`.
    pub fn new(block: u32, choice: u32) -> Self {
        Self { block, choice }
    }
}

impl fmt::Display for LayerRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}c{}", self.block, self.choice)
    }
}

/// Deterministic cost of candidate `choice` of a block with base kinds from
/// `domain`.
///
/// Candidates cycle through the domain's four base kinds. Compute cost
/// varies per candidate by a hash-derived factor in `[0.75, 1.5)` —
/// heterogeneous (so balanced partitioning matters) but with a mean that
/// does **not** grow with the number of candidates, keeping per-subnet
/// work comparable across space sizes. Parameter size grows +1 % per
/// four-candidate tier, so total supernet parameter sizes track the
/// paper's (GPipe can just hold NLP.c1's stage slice on 8 GPUs but not
/// NLP.c0's, matching §5.1).
pub fn candidate_cost(domain: Domain, choice: u32) -> (LayerKind, LayerCost) {
    let kinds = LayerKind::base_kinds(domain);
    let kind = kinds[(choice as usize) % kinds.len()];
    let tier = f64::from(choice / kinds.len() as u32);
    let base = kind.profiled_cost();
    // SplitMix64-style avalanche of the choice index -> stable pseudo-
    // random compute factor, identical on every platform and release.
    let mut h = u64::from(choice).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    let compute = 0.75 + 0.75 * unit;
    let size = 1.0 + 0.01 * tier;
    (
        kind,
        LayerCost {
            fwd_ms: base.fwd_ms * compute,
            bwd_ms: base.bwd_ms * compute,
            swap_ms: base.swap_ms * size,
            param_bytes: (base.param_bytes as f64 * size) as u64,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_swap_implies_param_bytes() {
        // Conv 3x1 swaps in 1.76 ms over 15 760 MB/s => ~27.7 MB.
        let cost = LayerKind::Conv3x1.profiled_cost();
        let mb = cost.param_bytes as f64 / 1_048_576.0;
        assert!((27.0..29.0).contains(&mb), "got {mb} MB");
    }

    #[test]
    fn light_conv_is_cheapest_nlp_kind() {
        let light = LayerKind::LightConv5x1.profiled_cost();
        for kind in LayerKind::base_kinds(Domain::Nlp) {
            assert!(light.total_ms() <= kind.profiled_cost().total_ms());
        }
    }

    #[test]
    fn all_kinds_have_positive_costs() {
        for domain in [Domain::Nlp, Domain::Cv] {
            for kind in LayerKind::base_kinds(domain) {
                let c = kind.profiled_cost();
                assert!(c.fwd_ms > 0.0 && c.bwd_ms > 0.0 && c.swap_ms > 0.0);
                assert!(c.param_bytes > 0);
                assert!(kind.activation_bytes_per_sample() > 0);
            }
        }
    }

    #[test]
    fn backward_slower_than_forward() {
        // Backward includes gradient computation plus the optimizer step.
        for domain in [Domain::Nlp, Domain::Cv] {
            for kind in LayerKind::base_kinds(domain) {
                let c = kind.profiled_cost();
                assert!(c.bwd_ms > c.fwd_ms, "{kind}");
            }
        }
    }

    #[test]
    fn candidate_costs_cycle_kinds_and_vary_compute() {
        let (k0, c0) = candidate_cost(Domain::Nlp, 0);
        let (k4, c4) = candidate_cost(Domain::Nlp, 4);
        assert_eq!(k0, k4, "kinds cycle every four candidates");
        assert_ne!(c0.fwd_ms, c4.fwd_ms, "variants have distinct compute");
        let (k1, _) = candidate_cost(Domain::Nlp, 1);
        assert_ne!(k0, k1);
        // Parameter size grows with the tier; compute factor is bounded.
        assert!(c4.param_bytes > c0.param_bytes);
        for c in 0..64 {
            let (kind, cost) = candidate_cost(Domain::Nlp, c);
            let base = kind.profiled_cost();
            let f = cost.fwd_ms / base.fwd_ms;
            assert!((0.75..1.5).contains(&f), "factor {f} out of range");
        }
    }

    #[test]
    fn mean_compute_does_not_grow_with_choice_count() {
        // Per-subnet work must be comparable across space sizes: the mean
        // candidate cost of the first 24 choices and of all 96 choices
        // agree within a few percent.
        let mean = |n: u32| {
            (0..n)
                .map(|c| candidate_cost(Domain::Nlp, c).1.total_ms())
                .sum::<f64>()
                / f64::from(n)
        };
        let small = mean(24);
        let large = mean(96);
        assert!(
            (small - large).abs() / small < 0.08,
            "means diverge: {small} vs {large}"
        );
    }

    #[test]
    fn at_batch_scales_compute_not_swap() {
        let c = LayerKind::Conv3x1.profiled_cost();
        let half = c.at_batch(192, 96);
        assert!((half.fwd_ms - c.fwd_ms / 2.0).abs() < 1e-9);
        assert_eq!(half.param_bytes, c.param_bytes);
        assert_eq!(half.swap_ms, c.swap_ms);
    }

    #[test]
    fn layer_ref_display_and_order() {
        let a = LayerRef::new(1, 2);
        let b = LayerRef::new(2, 0);
        assert!(a < b);
        assert_eq!(a.to_string(), "b1c2");
    }
}
