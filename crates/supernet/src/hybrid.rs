//! Hybrid traversal of multiple search spaces and dynamic (slimmable)
//! subnet sampling — the two future applications of §5.5.
//!
//! NASPipe's runtime "is flexible to hold any number of causal dependency
//! relations", so nothing stops one training run from interleaving
//! subnets of *several* search spaces: embed the spaces side by side in a
//! union supernet and let each subnet skip the blocks of the other
//! spaces. Skipped blocks are stateless ([`crate::subnet::SKIP_CHOICE`]),
//! so subnets of different member spaces never causally depend on each
//! other — the scheduler interleaves them freely while still serialising
//! same-space conflicts.
//!
//! The same skip mechanism models *dynamic/slimmable networks* [Li et
//! al.]: [`SlimmableSampler`] samples subnets of varying depth, skipping
//! a deterministic subset of blocks.

use crate::rng::DetRng;
use crate::sampler::ExplorationStrategy;
use crate::space::{ChoiceBlock, SearchSpace};
use crate::subnet::{Subnet, SubnetId, SKIP_CHOICE};

/// A union supernet embedding several member search spaces side by side.
///
/// # Example
///
/// ```
/// use naspipe_supernet::hybrid::HybridSpace;
/// use naspipe_supernet::layer::Domain;
/// use naspipe_supernet::space::SearchSpace;
/// use naspipe_supernet::subnet::SubnetId;
///
/// let a = SearchSpace::uniform(Domain::Nlp, 4, 3);
/// let b = SearchSpace::uniform(Domain::Nlp, 6, 3);
/// let hybrid = HybridSpace::new(&[&a, &b]);
/// assert_eq!(hybrid.union().num_blocks(), 10);
/// let s = hybrid.embed(1, SubnetId(0), &[0, 1, 2, 0, 1, 2]);
/// assert!(s.skips(0)); // member 0's blocks are skipped
/// assert_eq!(hybrid.member_of(&s), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct HybridSpace {
    union: SearchSpace,
    // offsets[i]..offsets[i+1] are member i's blocks within the union.
    offsets: Vec<usize>,
}

impl HybridSpace {
    /// Concatenates `members` into one union supernet.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or the members' domains differ (a
    /// union supernet runs on one cost catalog).
    pub fn new(members: &[&SearchSpace]) -> Self {
        assert!(
            !members.is_empty(),
            "a hybrid needs at least one member space"
        );
        let domain = members[0].domain();
        assert!(
            members.iter().all(|m| m.domain() == domain),
            "hybrid members must share a domain"
        );
        let mut offsets = vec![0usize];
        let mut blocks: Vec<ChoiceBlock> = Vec::new();
        for m in members {
            blocks.extend(m.blocks().iter().cloned());
            offsets.push(blocks.len());
        }
        Self {
            union: SearchSpace::from_blocks(domain, blocks),
            offsets,
        }
    }

    /// The union supernet (what the pipeline trains).
    pub fn union(&self) -> &SearchSpace {
        &self.union
    }

    /// Number of member spaces.
    pub fn num_members(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The union-block range of member `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn member_range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Embeds a member-space subnet into union coordinates: member `i`'s
    /// choices land in its block range, every other block is skipped.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the choice count mismatches the
    /// member's block count.
    pub fn embed(&self, i: usize, seq_id: SubnetId, choices: &[u32]) -> Subnet {
        let range = self.member_range(i);
        assert_eq!(
            choices.len(),
            range.len(),
            "member {i} has {} blocks, got {} choices",
            range.len(),
            choices.len()
        );
        let mut union_choices = vec![SKIP_CHOICE; self.union.num_blocks()];
        union_choices[range].copy_from_slice(choices);
        Subnet::new(seq_id, union_choices)
    }

    /// The member a union subnet belongs to, if it activates exactly one
    /// member's range.
    pub fn member_of(&self, subnet: &Subnet) -> Option<usize> {
        let mut member = None;
        for (b, &c) in subnet.choices().iter().enumerate() {
            if c == SKIP_CHOICE {
                continue;
            }
            let owner = (0..self.num_members()).find(|&i| self.member_range(i).contains(&b))?;
            match member {
                None => member = Some(owner),
                Some(m) if m == owner => {}
                Some(_) => return None,
            }
        }
        member
    }
}

/// Uniformly samples subnets from the members of a [`HybridSpace`],
/// cycling members round-robin — one interleaved exploration order over
/// several spaces, trained by a single pipeline.
#[derive(Debug, Clone)]
pub struct HybridSampler {
    hybrid_offsets: Vec<usize>,
    union_blocks: usize,
    choices_per_block: Vec<u32>,
    rng: DetRng,
    next_id: u64,
}

impl HybridSampler {
    /// Creates a sampler over `hybrid` seeded with `seed`.
    pub fn new(hybrid: &HybridSpace, seed: u64) -> Self {
        Self {
            hybrid_offsets: hybrid.offsets.clone(),
            union_blocks: hybrid.union.num_blocks(),
            choices_per_block: hybrid
                .union
                .blocks()
                .iter()
                .map(|b| b.num_choices())
                .collect(),
            rng: DetRng::new(seed).split(0x4859_4252), // "HYBR"
            next_id: 0,
        }
    }

    fn num_members(&self) -> usize {
        self.hybrid_offsets.len() - 1
    }
}

impl ExplorationStrategy for HybridSampler {
    fn next_subnet(&mut self) -> Subnet {
        let member = (self.next_id as usize) % self.num_members();
        let range = self.hybrid_offsets[member]..self.hybrid_offsets[member + 1];
        let mut choices = vec![SKIP_CHOICE; self.union_blocks];
        for b in range {
            choices[b] = self.rng.next_below(u64::from(self.choices_per_block[b])) as u32;
        }
        let id = SubnetId(self.next_id);
        self.next_id += 1;
        Subnet::new(id, choices)
    }

    fn next_seq_id(&self) -> SubnetId {
        SubnetId(self.next_id)
    }
}

/// Samples dynamic-depth (slimmable) subnets: each block beyond a minimum
/// prefix is skipped with probability `skip_prob`, so sampled subnets
/// have varying depth — the dynamic-network workload of §5.5.
#[derive(Debug, Clone)]
pub struct SlimmableSampler {
    choices_per_block: Vec<u32>,
    min_depth: usize,
    skip_prob: f64,
    rng: DetRng,
    next_id: u64,
}

impl SlimmableSampler {
    /// Creates a sampler over `space` keeping at least the first
    /// `min_depth` blocks active and skipping later blocks with
    /// probability `skip_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `min_depth` is zero or exceeds the block count, or if
    /// `skip_prob` is outside `[0, 1)`.
    pub fn new(space: &SearchSpace, min_depth: usize, skip_prob: f64, seed: u64) -> Self {
        assert!(
            min_depth >= 1 && min_depth <= space.num_blocks(),
            "min_depth must be in 1..={}",
            space.num_blocks()
        );
        assert!(
            (0.0..1.0).contains(&skip_prob),
            "skip_prob must be in [0, 1)"
        );
        Self {
            choices_per_block: space.blocks().iter().map(|b| b.num_choices()).collect(),
            min_depth,
            skip_prob,
            rng: DetRng::new(seed).split(0x534c_494d), // "SLIM"
            next_id: 0,
        }
    }
}

impl ExplorationStrategy for SlimmableSampler {
    fn next_subnet(&mut self) -> Subnet {
        let choices = self
            .choices_per_block
            .iter()
            .enumerate()
            .map(|(b, &n)| {
                if b >= self.min_depth && self.rng.next_f64() < self.skip_prob {
                    SKIP_CHOICE
                } else {
                    self.rng.next_below(u64::from(n)) as u32
                }
            })
            .collect();
        let id = SubnetId(self.next_id);
        self.next_id += 1;
        Subnet::new(id, choices)
    }

    fn next_seq_id(&self) -> SubnetId {
        SubnetId(self.next_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Domain;

    fn members() -> (SearchSpace, SearchSpace) {
        (
            SearchSpace::uniform(Domain::Nlp, 6, 4),
            SearchSpace::uniform(Domain::Nlp, 10, 3),
        )
    }

    #[test]
    fn union_concatenates_blocks() {
        let (a, b) = members();
        let hybrid = HybridSpace::new(&[&a, &b]);
        assert_eq!(hybrid.union().num_blocks(), 16);
        assert_eq!(hybrid.num_members(), 2);
        assert_eq!(hybrid.member_range(0), 0..6);
        assert_eq!(hybrid.member_range(1), 6..16);
    }

    #[test]
    fn embedded_subnets_skip_foreign_blocks() {
        let (a, b) = members();
        let hybrid = HybridSpace::new(&[&a, &b]);
        let s = hybrid.embed(1, SubnetId(0), &[0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
        assert!(s.is_valid_for(hybrid.union()));
        for blk in 0..6 {
            assert!(s.skips(blk), "member 0's blocks must be skipped");
        }
        assert!(!s.skips(6));
        assert_eq!(hybrid.member_of(&s), Some(1));
    }

    #[test]
    fn cross_member_subnets_never_conflict() {
        let (a, b) = members();
        let hybrid = HybridSpace::new(&[&a, &b]);
        let sa = hybrid.embed(0, SubnetId(0), &[0; 6]);
        let sb = hybrid.embed(1, SubnetId(1), &[0; 10]);
        assert!(!sa.conflicts_with(&sb));
        assert!(!sb.conflicts_with(&sa));
    }

    #[test]
    fn same_member_subnets_can_conflict() {
        let (a, b) = members();
        let hybrid = HybridSpace::new(&[&a, &b]);
        let s1 = hybrid.embed(0, SubnetId(0), &[0; 6]);
        let s2 = hybrid.embed(0, SubnetId(1), &[0; 6]);
        assert!(s1.conflicts_with(&s2));
    }

    #[test]
    fn hybrid_sampler_round_robins_members() {
        let (a, b) = members();
        let hybrid = HybridSpace::new(&[&a, &b]);
        let mut sampler = HybridSampler::new(&hybrid, 4);
        for i in 0..10u64 {
            let s = sampler.next_subnet();
            assert_eq!(s.seq_id(), SubnetId(i));
            assert!(s.is_valid_for(hybrid.union()));
            assert_eq!(
                hybrid.member_of(&s),
                Some((i % 2) as usize),
                "round-robin order"
            );
        }
    }

    #[test]
    fn hybrid_sampler_is_deterministic() {
        let (a, b) = members();
        let hybrid = HybridSpace::new(&[&a, &b]);
        let mut s1 = HybridSampler::new(&hybrid, 9);
        let mut s2 = HybridSampler::new(&hybrid, 9);
        for _ in 0..12 {
            assert_eq!(s1.next_subnet(), s2.next_subnet());
        }
    }

    #[test]
    fn slimmable_sampler_varies_depth() {
        let space = SearchSpace::uniform(Domain::Cv, 12, 4);
        let mut sampler = SlimmableSampler::new(&space, 4, 0.5, 7);
        let mut depths = std::collections::BTreeSet::new();
        for _ in 0..40 {
            let s = sampler.next_subnet();
            assert!(s.is_valid_for(&space));
            let depth = s.layers().count();
            assert!(depth >= 4, "minimum prefix always active");
            depths.insert(depth);
            for b in 0..4 {
                assert!(!s.skips(b));
            }
        }
        assert!(depths.len() > 3, "depth should vary, got {depths:?}");
    }

    #[test]
    #[should_panic(expected = "must share a domain")]
    fn mixed_domain_hybrid_panics() {
        let a = SearchSpace::uniform(Domain::Nlp, 4, 4);
        let b = SearchSpace::uniform(Domain::Cv, 4, 4);
        HybridSpace::new(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "min_depth")]
    fn zero_min_depth_panics() {
        let space = SearchSpace::uniform(Domain::Nlp, 4, 4);
        SlimmableSampler::new(&space, 0, 0.5, 0);
    }
}
