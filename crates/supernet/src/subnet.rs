//! Subnets and the causal-dependency predicate.
//!
//! A subnet is an `m`-sized list of layer choices, one per choice block,
//! identified by its **sequence ID** — its position in the total order the
//! exploration algorithm emits subnets in. If subnets `x < y` activate the
//! same candidate layer in any block, `y` is causally dependent on `x` and
//! must not read that layer before `x`'s write (backward pass) completes.

use crate::layer::LayerRef;
use crate::space::SearchSpace;
use std::fmt;

/// The reserved choice value meaning "this block is skipped": the subnet
/// passes activations through the block unchanged and touches no
/// parameters there.
///
/// Skip choices enable the paper's §5.5 extensions: *dynamic/slimmable
/// networks* (subnets of varying depth) and *hybrid traversal of multiple
/// search spaces* (a union supernet where each subnet activates only its
/// own space's blocks). A skipped block is stateless, so it never induces
/// a causal dependency.
pub const SKIP_CHOICE: u32 = u32::MAX;

/// Position of a subnet in the exploration algorithm's total order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SubnetId(pub u64);

impl fmt::Display for SubnetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SN{}", self.0)
    }
}

/// One sampled architecture: a choice index for every block of the space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Subnet {
    seq_id: SubnetId,
    choices: Vec<u32>,
}

impl Subnet {
    /// Creates a subnet with the given sequence ID and per-block choices.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn new(seq_id: SubnetId, choices: Vec<u32>) -> Self {
        assert!(
            !choices.is_empty(),
            "a subnet must choose at least one layer"
        );
        Self { seq_id, choices }
    }

    /// The subnet's position in the exploration order.
    pub fn seq_id(&self) -> SubnetId {
        self.seq_id
    }

    /// Per-block candidate choices, indexed by block.
    pub fn choices(&self) -> &[u32] {
        &self.choices
    }

    /// Number of layers (= number of blocks, `m`).
    pub fn num_layers(&self) -> usize {
        self.choices.len()
    }

    /// The activated layer of block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn layer(&self, block: usize) -> LayerRef {
        LayerRef::new(block as u32, self.choices[block])
    }

    /// Whether block `block` is skipped (stateless pass-through).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn skips(&self, block: usize) -> bool {
        self.choices[block] == SKIP_CHOICE
    }

    /// Iterates over the activated (non-skipped) layers in block order.
    pub fn layers(&self) -> impl Iterator<Item = LayerRef> + '_ {
        self.choices
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != SKIP_CHOICE)
            .map(|(b, &c)| LayerRef::new(b as u32, c))
    }

    /// Blocks in which `self` and `other` activate the same candidate —
    /// i.e. the shared layers that induce a causal dependency. Skipped
    /// blocks are stateless and never shared.
    pub fn shared_blocks<'a>(&'a self, other: &'a Subnet) -> impl Iterator<Item = usize> + 'a {
        let common = self.choices.len().min(other.choices.len());
        (0..common)
            .filter(move |&b| self.choices[b] == other.choices[b] && self.choices[b] != SKIP_CHOICE)
    }

    /// Whether any layer is shared with `other` (a causal dependency
    /// exists if the subnets are ordered).
    pub fn conflicts_with(&self, other: &Subnet) -> bool {
        self.shared_blocks(other).next().is_some()
    }

    /// Whether layers of `self` restricted to `blocks` overlap `other`'s
    /// activated layer set — the stage-local check of Algorithm 2 line 7.
    pub fn conflicts_within(&self, blocks: std::ops::Range<usize>, other: &Subnet) -> bool {
        blocks
            .clone()
            .filter(|&b| b < self.choices.len() && b < other.choices.len())
            .any(|b| self.choices[b] == other.choices[b] && self.choices[b] != SKIP_CHOICE)
    }

    /// Validates that every choice is in range for `space` (skip choices
    /// are always valid).
    pub fn is_valid_for(&self, space: &SearchSpace) -> bool {
        self.choices.len() == space.num_blocks()
            && self
                .choices
                .iter()
                .zip(space.blocks())
                .all(|(&c, b)| c == SKIP_CHOICE || c < b.num_choices())
    }

    /// Total parameter bytes of the subnet's activated layers in `space`.
    ///
    /// # Panics
    ///
    /// Panics if the subnet is not valid for `space`.
    pub fn param_bytes(&self, space: &SearchSpace) -> u64 {
        self.layers().map(|l| space.layer_cost(l).param_bytes).sum()
    }

    /// Total profiled compute time (fwd+bwd) of the subnet in `space`, ms.
    ///
    /// # Panics
    ///
    /// Panics if the subnet is not valid for `space`.
    pub fn compute_ms(&self, space: &SearchSpace) -> f64 {
        self.layers().map(|l| space.layer_cost(l).total_ms()).sum()
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.seq_id)?;
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str("]")
    }
}

/// Probability that two independently uniformly sampled subnets of a space
/// with `choices` candidates per block share at least one of `blocks`
/// layers. This quantifies the paper's key insight: the larger the space,
/// the fewer dependencies manifest between chronologically close subnets.
pub fn collision_probability(blocks: u32, choices: u32) -> f64 {
    1.0 - (1.0 - 1.0 / f64::from(choices)).powi(blocks as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Domain;

    fn subnet(id: u64, choices: &[u32]) -> Subnet {
        Subnet::new(SubnetId(id), choices.to_vec())
    }

    #[test]
    fn shared_blocks_detects_equal_choices() {
        let a = subnet(0, &[1, 2, 3, 4]);
        let b = subnet(1, &[1, 0, 3, 5]);
        assert_eq!(a.shared_blocks(&b).collect::<Vec<_>>(), vec![0, 2]);
        assert!(a.conflicts_with(&b));
    }

    #[test]
    fn disjoint_subnets_do_not_conflict() {
        let a = subnet(0, &[0, 0, 0]);
        let b = subnet(1, &[1, 1, 1]);
        assert!(!a.conflicts_with(&b));
        assert_eq!(a.shared_blocks(&b).count(), 0);
    }

    #[test]
    fn conflicts_within_is_stage_local() {
        let a = subnet(0, &[7, 2, 3, 4]);
        let b = subnet(1, &[7, 0, 0, 4]);
        assert!(a.conflicts_within(0..2, &b)); // block 0 shared
        assert!(!a.conflicts_within(1..3, &b)); // blocks 1,2 differ
        assert!(a.conflicts_within(2..4, &b)); // block 3 shared
    }

    #[test]
    fn conflicts_within_handles_out_of_range() {
        let a = subnet(0, &[1, 1]);
        let b = subnet(1, &[1, 1]);
        assert!(a.conflicts_within(0..10, &b));
        assert!(!a.conflicts_within(5..10, &b));
    }

    #[test]
    fn validity_against_space() {
        let space = SearchSpace::uniform(Domain::Nlp, 4, 8);
        assert!(subnet(0, &[0, 7, 3, 5]).is_valid_for(&space));
        assert!(!subnet(0, &[0, 8, 3, 5]).is_valid_for(&space)); // choice oob
        assert!(!subnet(0, &[0, 1, 2]).is_valid_for(&space)); // wrong length
    }

    #[test]
    fn param_and_compute_totals_are_sums() {
        let space = SearchSpace::uniform(Domain::Cv, 3, 4);
        let s = subnet(0, &[0, 1, 2]);
        let expected_bytes: u64 = (0..3)
            .map(|b| space.layer_cost(LayerRef::new(b, b)).param_bytes)
            .sum();
        assert_eq!(s.param_bytes(&space), expected_bytes);
        assert!(s.compute_ms(&space) > 0.0);
    }

    #[test]
    fn collision_probability_shrinks_with_choices() {
        let big = collision_probability(48, 96);
        let small = collision_probability(48, 24);
        assert!(big < small);
        // 48 blocks, 96 choices: ~39% chance two adjacent subnets collide.
        assert!((0.3..0.5).contains(&big));
        // 48 blocks, 24 choices: ~87%.
        assert!(small > 0.8);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_subnet_panics() {
        Subnet::new(SubnetId(0), vec![]);
    }

    #[test]
    fn display_formats() {
        let s = subnet(3, &[1, 2]);
        assert_eq!(s.to_string(), "SN3[1,2]");
        assert_eq!(SubnetId(3).to_string(), "SN3");
    }
}
