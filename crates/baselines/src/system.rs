//! The four evaluated systems as one enum, with their policies and
//! display names — the row/series labels of Table 2 and Figures 4–7.

use naspipe_core::config::{PipelineConfig, SyncPolicy};
use naspipe_core::pipeline::{run_pipeline_with_subnets, PipelineError, PipelineOutcome};
use naspipe_supernet::space::SearchSpace;
use naspipe_supernet::subnet::Subnet;
use std::fmt;

/// One of the evaluated training systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// NASPipe (CSP).
    NasPipe,
    /// GPipe (BSP, no swapping).
    GPipe,
    /// PipeDream (ASP).
    PipeDream,
    /// VPipe (BSP with parameter swapping).
    VPipe,
}

impl SystemKind {
    /// The four systems in the paper's presentation order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::NasPipe,
        SystemKind::GPipe,
        SystemKind::PipeDream,
        SystemKind::VPipe,
    ];

    /// The synchronisation policy this system uses.
    pub fn policy(self) -> SyncPolicy {
        match self {
            SystemKind::NasPipe => SyncPolicy::naspipe(),
            SystemKind::GPipe => SyncPolicy::Bsp {
                bulk: 0,
                swap: false,
            },
            SystemKind::PipeDream => SyncPolicy::Asp,
            SystemKind::VPipe => SyncPolicy::Bsp {
                bulk: 0,
                swap: true,
            },
        }
    }

    /// The synchronisation discipline's name (Table 3's "Sync." column).
    pub fn sync_name(self) -> &'static str {
        match self {
            SystemKind::NasPipe => "CSP",
            SystemKind::GPipe | SystemKind::VPipe => "BSP",
            SystemKind::PipeDream => "ASP",
        }
    }

    /// Whether the system preserves causal dependencies (and is therefore
    /// reproducible across GPU counts).
    pub fn is_reproducible(self) -> bool {
        matches!(self, SystemKind::NasPipe)
    }

    /// A ready-to-run configuration for this system.
    pub fn config(self, num_gpus: u32, num_subnets: u64) -> PipelineConfig {
        let mut cfg = PipelineConfig::naspipe(num_gpus, num_subnets);
        cfg.policy = self.policy();
        cfg
    }

    /// Runs this system over `space` on the given subnet stream.
    ///
    /// # Errors
    ///
    /// Propagates [`PipelineError`] — notably out-of-memory for
    /// GPipe/PipeDream on search spaces whose supernet exceeds GPU memory.
    pub fn run(
        self,
        space: &SearchSpace,
        num_gpus: u32,
        subnets: Vec<Subnet>,
    ) -> Result<PipelineOutcome, PipelineError> {
        let cfg = self.config(num_gpus, subnets.len() as u64);
        run_pipeline_with_subnets(space, &cfg, subnets)
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SystemKind::NasPipe => "NASPipe",
            SystemKind::GPipe => "GPipe",
            SystemKind::PipeDream => "PipeDream",
            SystemKind::VPipe => "VPipe",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use naspipe_supernet::layer::Domain;
    use naspipe_supernet::sampler::{ExplorationStrategy, UniformSampler};

    #[test]
    fn names_and_sync_labels() {
        assert_eq!(SystemKind::NasPipe.to_string(), "NASPipe");
        assert_eq!(SystemKind::GPipe.sync_name(), "BSP");
        assert_eq!(SystemKind::VPipe.sync_name(), "BSP");
        assert_eq!(SystemKind::PipeDream.sync_name(), "ASP");
        assert_eq!(SystemKind::NasPipe.sync_name(), "CSP");
    }

    #[test]
    fn only_naspipe_is_reproducible() {
        let repro: Vec<SystemKind> = SystemKind::ALL
            .into_iter()
            .filter(|s| s.is_reproducible())
            .collect();
        assert_eq!(repro, vec![SystemKind::NasPipe]);
    }

    #[test]
    fn all_systems_run_a_small_space() {
        let space = SearchSpace::uniform(Domain::Nlp, 8, 6);
        let subnets = UniformSampler::new(&space, 1).take_subnets(10);
        for system in SystemKind::ALL {
            let out = system
                .run(&space, 4, subnets.clone())
                .unwrap_or_else(|e| panic!("{system} failed: {e}"));
            assert_eq!(out.report.subnets_completed, 10, "{system}");
        }
    }

    #[test]
    fn policies_match_expectations() {
        assert!(SystemKind::NasPipe.policy().swaps_parameters());
        assert!(!SystemKind::GPipe.policy().swaps_parameters());
        assert!(SystemKind::VPipe.policy().swaps_parameters());
        assert!(!SystemKind::PipeDream.policy().recomputes_activations());
    }
}
