//! PipeDream (Narayanan et al.): asynchronous 1F1B pipeline training.
//!
//! PipeDream interleaves one forward and one backward per stage with
//! asynchronous parameter updates (ASP) and never flushes, so its bubble
//! ratio is only the pipeline ramp (~0.1). It stores full activations for
//! every in-flight batch (no rematerialisation), which — combined with
//! keeping the whole supernet in GPU memory — gives it the smallest
//! supported batches in Table 2. Without any dependency tracking, subnets
//! read whatever parameter version is current: training results depend on
//! the pipeline depth and are not reproducible.

use crate::system::SystemKind;
use naspipe_core::config::PipelineConfig;
use naspipe_core::pipeline::{PipelineError, PipelineOutcome};
use naspipe_supernet::space::SearchSpace;
use naspipe_supernet::subnet::Subnet;

/// PipeDream's configuration for `num_gpus` GPUs and `num_subnets`
/// subnets.
pub fn config(num_gpus: u32, num_subnets: u64) -> PipelineConfig {
    SystemKind::PipeDream.config(num_gpus, num_subnets)
}

/// Runs PipeDream over `space` on an explicit subnet stream.
///
/// # Errors
///
/// Returns [`PipelineError::OutOfMemory`] when the supernet's stage slice
/// exceeds GPU memory.
pub fn run(
    space: &SearchSpace,
    num_gpus: u32,
    subnets: Vec<Subnet>,
) -> Result<PipelineOutcome, PipelineError> {
    SystemKind::PipeDream.run(space, num_gpus, subnets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use naspipe_core::pipeline::run_pipeline_with_subnets;
    use naspipe_supernet::layer::Domain;
    use naspipe_supernet::sampler::{ExplorationStrategy, UniformSampler};

    #[test]
    fn low_bubble_ratio() {
        let space = SearchSpace::uniform(Domain::Nlp, 16, 8);
        let subnets = UniformSampler::new(&space, 3).take_subnets(80);
        let mut cfg = config(8, 80);
        cfg.batch = 16;
        let out = run_pipeline_with_subnets(&space, &cfg, subnets).unwrap();
        assert!(
            out.report.bubble_ratio < 0.35,
            "ASP bubble {} should be small",
            out.report.bubble_ratio
        );
    }

    #[test]
    fn smallest_batches_of_all_systems() {
        let space = SearchSpace::nlp_c2();
        let pd = naspipe_core::memory::plan(&space, config(8, 1).policy, 8, 3.0)
            .verdict
            .batch()
            .unwrap();
        let gp = naspipe_core::memory::plan(&space, SystemKind::GPipe.config(8, 1).policy, 8, 3.0)
            .verdict
            .batch()
            .unwrap();
        assert!(pd < gp, "PipeDream {pd} !< GPipe {gp}");
    }

    #[test]
    fn fails_on_oversized_supernet() {
        let space = SearchSpace::nlp_c0();
        let subnets = UniformSampler::new(&space, 0).take_subnets(4);
        assert!(matches!(
            run(&space, 8, subnets),
            Err(PipelineError::OutOfMemory { .. })
        ));
    }
}
