//! Intra-subnet task generation — the alternative the paper argues
//! against (§2.2).
//!
//! Instead of pipelining *different* subnets (inter-subnet), intra-subnet
//! generation splits one subnet's batch into micro-batches and pipelines
//! those, flushing before the next subnet (GPipe's native mode). The
//! paper's argument: this is "non-general", efficient only for large
//! batches — with the small batches supernet algorithms use, the pipeline
//! never fills and per-micro-batch GPU efficiency collapses.
//!
//! This module models intra-subnet execution analytically (its schedule
//! is closed-form: a fill-drain pipeline of identical micro-tasks) so the
//! generation modes can be compared under the same cost model.

use naspipe_core::report::alu_efficiency;
use naspipe_supernet::profile::ProfiledSpace;
use naspipe_supernet::sampler::{ExplorationStrategy, UniformSampler};
use naspipe_supernet::space::SearchSpace;

/// Analytic result of intra-subnet (micro-batched) execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntraSubnetEstimate {
    /// Micro-batches per subnet.
    pub microbatches: u32,
    /// Samples per micro-batch.
    pub micro_size: u32,
    /// Pipeline bubble ratio: `(D-1) / (u + D - 1)`.
    pub bubble_ratio: f64,
    /// Samples per second of virtual time.
    pub throughput: f64,
    /// Total ALU utilisation (busy fraction x micro-batch efficiency,
    /// summed over GPUs).
    pub total_alu: f64,
}

/// Estimates intra-subnet execution of `space` on `gpus` GPUs at input
/// batch `batch`, split into `microbatches`.
///
/// Per-stage micro-task time uses the same saturation model as the
/// engine: compute scales as `(b + 2 ref) / (3 ref)` and efficiency as
/// `b / (b + ref/2)` with `b = batch / microbatches`.
///
/// # Panics
///
/// Panics if any argument is zero or `microbatches > batch`.
pub fn estimate(
    space: &SearchSpace,
    gpus: u32,
    batch: u32,
    microbatches: u32,
    sample_subnets: u32,
) -> IntraSubnetEstimate {
    assert!(
        gpus > 0 && batch > 0 && microbatches > 0,
        "arguments must be positive"
    );
    assert!(
        microbatches <= batch,
        "cannot split {batch} samples into {microbatches}"
    );
    let reference = space
        .id()
        .map(|id| id.default_batch())
        .unwrap_or(match space.domain() {
            naspipe_supernet::layer::Domain::Nlp => 192,
            naspipe_supernet::layer::Domain::Cv => 64,
        });
    let micro = batch / microbatches;
    let profile = ProfiledSpace::new(space, reference);

    // Average per-subnet compute at the reference batch, then rescale one
    // micro-task: stage time = subnet_total / D / u, scaled by the
    // saturation curve at the micro size.
    let mut sampler = UniformSampler::new(space, 0x494e_5452); // "INTR"
    let mut total_ms = 0.0;
    for _ in 0..sample_subnets.max(1) {
        total_ms += profile.subnet_total_ms(&sampler.next_subnet());
    }
    total_ms /= f64::from(sample_subnets.max(1));
    // One micro-task covers `micro` samples; under the saturation model
    // its stage time is the reference stage time scaled by
    // (micro + 2 ref) / (3 ref) — far more than `micro/batch` of the
    // full-batch time, which is exactly why small micro-batches lose.
    let sat = 2.0 * f64::from(reference);
    let scale = (f64::from(micro) + sat) / (f64::from(reference) + sat);
    let micro_stage_ms = total_ms / f64::from(gpus) * scale;

    // Fill-drain: u micro-tasks through D stages (forward and backward
    // both pipeline, so the slot count doubles but the ratio is the same).
    let d = f64::from(gpus);
    let u = f64::from(microbatches);
    let bubble = (d - 1.0) / (u + d - 1.0);
    let span_ms = (u + d - 1.0) * micro_stage_ms * 3.0; // fwd + bwd(2x)
    let throughput = f64::from(batch) / (span_ms / 1_000.0);
    let eff = alu_efficiency(micro.max(1), reference);
    let total_alu = (1.0 - bubble) * eff * d;
    IntraSubnetEstimate {
        microbatches,
        micro_size: micro,
        bubble_ratio: bubble,
        throughput,
        total_alu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_microbatches_less_bubble_but_less_efficiency() {
        let space = SearchSpace::nlp_c2();
        let few = estimate(&space, 8, 64, 2, 8);
        let many = estimate(&space, 8, 64, 16, 8);
        assert!(many.bubble_ratio < few.bubble_ratio);
        // But the micro size collapses (64/16 = 4 samples) and so does
        // per-task efficiency.
        assert!(many.micro_size < few.micro_size);
        assert!(many.total_alu < 8.0);
    }

    #[test]
    fn small_batches_make_intra_subnet_inefficient() {
        // The paper's §2.2 argument: at supernet-typical batches the
        // micro-batches are tiny and utilisation collapses.
        let space = SearchSpace::nlp_c2();
        let small_batch = estimate(&space, 8, 32, 8, 8);
        let large_batch = estimate(&space, 8, 512, 8, 8);
        assert!(
            small_batch.total_alu < large_batch.total_alu * 0.6,
            "small {} vs large {}",
            small_batch.total_alu,
            large_batch.total_alu
        );
    }

    #[test]
    fn estimate_is_deterministic() {
        let space = SearchSpace::cv_c2();
        assert_eq!(estimate(&space, 8, 64, 8, 8), estimate(&space, 8, 64, 8, 8));
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn oversplitting_panics() {
        estimate(&SearchSpace::cv_c3(), 8, 4, 8, 1);
    }
}
