//! Retiarii's wrapped data parallelism (Zhang et al., OSDI '20).
//!
//! Retiarii assigns each GPU one whole subnet execution and synchronises
//! parameters through an external parameter-server, flushing in bulk
//! (BSP). The paper excludes it from the performance baselines because it
//! cannot train supernets whose *subnets* exceed one GPU's memory — the
//! very workloads NASPipe targets — and because its global synchronisation
//! server scales poorly. This module models it analytically to make those
//! two limits concrete (§2.2).

use naspipe_core::memory::WORKSPACE_BYTES;
use naspipe_sim::cluster::GPU_MEMORY_BYTES;
use naspipe_sim::link::Link;
use naspipe_supernet::profile::ProfiledSpace;
use naspipe_supernet::sampler::{ExplorationStrategy, UniformSampler};
use naspipe_supernet::space::SearchSpace;

/// Result of an analytic Retiarii run.
#[derive(Debug, Clone, PartialEq)]
pub struct RetiariiEstimate {
    /// Whether one subnet (plus activations) fits a single GPU.
    pub feasible: bool,
    /// Mean subnet parameter bytes.
    pub subnet_bytes: u64,
    /// Subnets trained per virtual hour across all GPUs.
    pub subnets_per_hour: f64,
    /// Fraction of each round spent in parameter-server synchronisation.
    pub sync_fraction: f64,
}

/// Estimates Retiarii's wrapped-data-parallel throughput on `space` with
/// `num_gpus` GPUs at the space's default batch.
///
/// Each round, every GPU trains one subnet locally and then exchanges the
/// subnet's parameters with the parameter server over the host network;
/// the bulk barrier makes the round as long as the slowest subnet plus
/// the serialised server synchronisation.
///
/// # Panics
///
/// Panics if `num_gpus == 0`.
pub fn estimate(space: &SearchSpace, num_gpus: u32, sample_rounds: u32) -> RetiariiEstimate {
    assert!(num_gpus > 0, "need at least one GPU");
    let batch = space.id().map(|id| id.default_batch()).unwrap_or(64);
    let profile = ProfiledSpace::new(space, batch);
    let subnet_bytes = naspipe_core::memory::mean_subnet_param_bytes(space);
    let feasible = subnet_bytes + WORKSPACE_BYTES < GPU_MEMORY_BYTES;

    // Sample rounds deterministically to average subnet compute times.
    let mut sampler = UniformSampler::new(space, 0x5245_5449);
    let mut total_hours = 0.0f64;
    let mut sync_total = 0.0f64;
    let mut round_total = 0.0f64;
    let net = Link::ethernet_40g();
    for _ in 0..sample_rounds.max(1) {
        // The bulk barrier waits for the slowest of the D subnets.
        let mut slowest_ms = 0.0f64;
        for _ in 0..num_gpus {
            let s = sampler.next_subnet();
            slowest_ms = slowest_ms.max(profile.subnet_total_ms(&s));
        }
        // PS sync: every GPU pushes gradients and pulls parameters for a
        // whole subnet through the central server, serialised there.
        let sync_ms = net.transfer_time(2 * subnet_bytes).as_ms() * f64::from(num_gpus);
        let round_ms = slowest_ms + sync_ms;
        sync_total += sync_ms;
        round_total += round_ms;
        total_hours += round_ms / 3_600_000.0;
    }
    let rounds = f64::from(sample_rounds.max(1));
    RetiariiEstimate {
        feasible,
        subnet_bytes,
        subnets_per_hour: if feasible {
            f64::from(num_gpus) * rounds / total_hours
        } else {
            0.0
        },
        sync_fraction: sync_total / round_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_fraction_grows_with_gpus() {
        let space = SearchSpace::nlp_c3();
        let few = estimate(&space, 4, 8);
        let many = estimate(&space, 16, 8);
        assert!(
            many.sync_fraction > few.sync_fraction,
            "central PS must become the bottleneck: {} !> {}",
            many.sync_fraction,
            few.sync_fraction
        );
    }

    #[test]
    fn feasible_on_small_spaces() {
        let est = estimate(&SearchSpace::cv_c3(), 8, 4);
        assert!(est.feasible);
        assert!(est.subnets_per_hour > 0.0);
        assert!(est.subnet_bytes > 0);
    }

    #[test]
    fn estimate_is_deterministic() {
        let space = SearchSpace::nlp_c2();
        assert_eq!(estimate(&space, 8, 4), estimate(&space, 8, 4));
    }
}
