//! VPipe (Zhao et al.): BSP pipeline training with parameter swapping.
//!
//! VPipe extends GPipe-style BSP with CPU-memory parameter swapping, so it
//! matches NASPipe's large batch sizes. But its partition is effectively
//! static across subnets (its live-migration repartitioner is built for
//! the slow drift of single-DNN training, not per-second subnet switches,
//! §2.3) and its swapping has no subnet-aware prediction — each subnet's
//! context is fetched on demand, so layers hit in cache only when a
//! recent subnet happened to share them (1–8 % in Table 2, rising with
//! the per-block collision probability of smaller spaces).

use crate::system::SystemKind;
use naspipe_core::config::PipelineConfig;
use naspipe_core::pipeline::{PipelineError, PipelineOutcome};
use naspipe_supernet::space::SearchSpace;
use naspipe_supernet::subnet::Subnet;

/// VPipe's configuration for `num_gpus` GPUs and `num_subnets` subnets.
pub fn config(num_gpus: u32, num_subnets: u64) -> PipelineConfig {
    SystemKind::VPipe.config(num_gpus, num_subnets)
}

/// Runs VPipe over `space` on an explicit subnet stream.
///
/// # Errors
///
/// Propagates [`PipelineError`]; VPipe's swapping means even the largest
/// spaces fit.
pub fn run(
    space: &SearchSpace,
    num_gpus: u32,
    subnets: Vec<Subnet>,
) -> Result<PipelineOutcome, PipelineError> {
    SystemKind::VPipe.run(space, num_gpus, subnets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use naspipe_supernet::sampler::{ExplorationStrategy, UniformSampler};
    use naspipe_supernet::space::SearchSpace;

    #[test]
    fn handles_nlp_c0_unlike_gpipe() {
        let space = SearchSpace::nlp_c0();
        let subnets = UniformSampler::new(&space, 0).take_subnets(4);
        let out = run(&space, 8, subnets).expect("VPipe swaps, so NLP.c0 fits");
        assert_eq!(out.report.subnets_completed, 4);
    }

    #[test]
    fn matches_naspipe_batch_sizes() {
        let space = SearchSpace::cv_c1();
        let vp = naspipe_core::memory::plan(&space, config(8, 1).policy, 8, 3.0)
            .verdict
            .batch()
            .unwrap();
        let nas =
            naspipe_core::memory::plan(&space, SystemKind::NasPipe.config(8, 1).policy, 8, 3.0)
                .verdict
                .batch()
                .unwrap();
        assert_eq!(vp, nas);
    }

    #[test]
    fn low_cache_hit_rate_without_prediction() {
        let space = SearchSpace::nlp_c2();
        let subnets = UniformSampler::new(&space, 5).take_subnets(30);
        let out = run(&space, 8, subnets).unwrap();
        let hit = out.report.cache_hit_rate.expect("VPipe swaps");
        assert!(hit < 0.5, "VPipe hit rate {hit} should be low");
    }
}
