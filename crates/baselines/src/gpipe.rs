//! GPipe (Huang et al.): bulk-synchronous pipeline training.
//!
//! GPipe splits work into bulks, pipelines them across stages, and flushes
//! (a synchronisation barrier) after every bulk; activation tensors are
//! rematerialised in the backward pass, giving the most compact GPU memory
//! use among the non-swapping systems. Applied to inter-subnet parallel
//! supernet training, the flush makes all of a bulk's forwards read the
//! same pre-bulk parameter versions — causal dependencies *within* a bulk
//! are violated (Figure 1), so training is not reproducible across GPU
//! counts.
//!
//! Characteristic behaviour reproduced here:
//! * constant bubble ratio `(D-1)/(bulk + D - 1)` ≈ 0.57 at `D = 8`,
//!   independent of the search space (§5.1);
//! * the whole supernet must reside in GPU memory, capping batch size and
//!   failing outright on NLP.c0.

use crate::system::SystemKind;
use naspipe_core::config::PipelineConfig;
use naspipe_core::pipeline::{PipelineError, PipelineOutcome};
use naspipe_supernet::space::SearchSpace;
use naspipe_supernet::subnet::Subnet;

/// GPipe's configuration for `num_gpus` GPUs and `num_subnets` subnets.
pub fn config(num_gpus: u32, num_subnets: u64) -> PipelineConfig {
    SystemKind::GPipe.config(num_gpus, num_subnets)
}

/// Runs GPipe over `space` on an explicit subnet stream.
///
/// # Errors
///
/// Returns [`PipelineError::OutOfMemory`] when the supernet's stage slice
/// exceeds GPU memory (e.g. NLP.c0 on 8 GPUs).
pub fn run(
    space: &SearchSpace,
    num_gpus: u32,
    subnets: Vec<Subnet>,
) -> Result<PipelineOutcome, PipelineError> {
    SystemKind::GPipe.run(space, num_gpus, subnets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use naspipe_supernet::layer::Domain;
    use naspipe_supernet::sampler::{ExplorationStrategy, UniformSampler};

    #[test]
    fn bubble_matches_fill_drain_formula() {
        let space = SearchSpace::uniform(Domain::Nlp, 16, 8);
        let subnets = UniformSampler::new(&space, 3).take_subnets(60);
        let mut cfg = config(8, 60);
        cfg.batch = 32;
        let out = naspipe_core::pipeline::run_pipeline_with_subnets(&space, &cfg, subnets).unwrap();
        // bulk = D/2 + 1 = 5; bubble ~ (D-1)/(bulk + D-1) = 7/12 ~ 0.58.
        let b = out.report.bubble_ratio;
        assert!((0.40..0.75).contains(&b), "bubble {b} out of GPipe range");
    }

    #[test]
    fn fails_on_oversized_supernet() {
        let space = SearchSpace::nlp_c0();
        let subnets = UniformSampler::new(&space, 0).take_subnets(4);
        match run(&space, 8, subnets) {
            Err(PipelineError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn supports_nlp_c1_with_small_batch() {
        let space = SearchSpace::nlp_c1();
        let subnets = UniformSampler::new(&space, 0).take_subnets(6);
        let out = run(&space, 8, subnets).expect("NLP.c1 fits on 8 GPUs");
        assert!(out.report.batch < 64, "GPipe batch should be memory-bound");
        assert!(out.report.cache_hit_rate.is_none());
    }
}
