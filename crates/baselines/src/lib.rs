//! Baseline pipeline training systems compared against NASPipe in §5:
//!
//! * [`gpipe`] — GPipe: BSP pipeline with activation rematerialisation and
//!   the whole supernet resident in GPU memory;
//! * [`pipedream`] — PipeDream: ASP 1F1B pipeline with asynchronous
//!   parameter updates and no recomputation;
//! * [`vpipe`] — VPipe: BSP pipeline that swaps parameters to CPU memory
//!   (larger batches than GPipe) but keeps a static partition and no
//!   subnet-aware prefetching;
//! * [`retiarii`] — Retiarii's wrapped data parallelism: one whole subnet
//!   per GPU synchronised through an external parameter server.
//!
//! All four run over the same simulator substrate as NASPipe
//! ([`naspipe_core::pipeline`]), so comparisons measure scheduling
//! discipline, not implementation accidents.

pub mod gpipe;
pub mod intra;
pub mod pipedream;
pub mod retiarii;
pub mod system;
pub mod vpipe;

pub use system::SystemKind;
