//! The `naspipe` command-line tool: train, replay, and search supernets
//! from the shell.
//!
//! ```text
//! naspipe spaces
//! naspipe train  --space NLP.c2 --gpus 8 --subnets 120 [--system gpipe]
//!                [--seed 7] [--batch 64] [--threads 4] [--transcript run.nt]
//!                [--engine des|threaded] [--metrics-addr 127.0.0.1:9464]
//!                [--journal run.journal.jsonl] [--sample-interval-ms 200]
//!                [--checkpoint-dir DIR] [--checkpoint-keep 3]
//!                [--checkpoint-interval 8] [--resume] [--kill-at 1:13]
//! naspipe replay --space NLP.c2 --transcript run.nt [--seed 7]
//! naspipe search --space CV.c2 --gpus 8 --subnets 120 --rounds 96 [--seed 7]
//!                [--metrics-addr 127.0.0.1:9464]
//! naspipe top    --addr 127.0.0.1:9464 [--interval-ms 1000]
//!                [--iterations 0] [--once]
//! naspipe bench-check [--baseline BENCH_compute.json] [--threshold-pct 15]
//!                [--e2e-threshold-pct 35] [--gate kernels|all] [--explain]
//! naspipe replay-check [--corpus traces/golden] [--mode strict|lenient]
//!                [--case SUBSTR] [--bless] [--explain]
//! naspipe doctor --base base_trace.json --cand cand_trace.json [--top 5]
//!                [--base-bench A.json --cand-bench B.json]
//!                [--base-flight A.flight.json] [--cand-flight B.flight.json]
//!                [--journal run.journal.jsonl]
//!                [--threshold-pct 15] [--json]
//! ```
//!
//! With `--metrics-addr`, the run serves the full ops plane while
//! training: `GET /metrics` (Prometheus 0.0.4 text), `/healthz` +
//! `/readyz` (liveness vs. admitting-work), `/status` (versioned JSON
//! status document), `/flight` (on-demand flight-recorder dump), and
//! `/events` (chunked stream of the structured journal). `--journal
//! PATH` tees the same journal to a JSONL file; `naspipe top` renders a
//! live per-stage terminal view by scraping `/status` + `/metrics`.
//!
//! `replay-check` is the behavioral twin of `bench-check`: it re-executes
//! the committed golden traces against the current scheduler and fails
//! (strict mode) on any divergence, naming the first divergent task.
//!
//! `doctor` diagnoses a regression between two runs from their artifacts:
//! chrome traces (see `REPRO_TRACE_JSON` / `repro trace`) are required and
//! yield the ranked critical-path attribution; bench and flight artifacts
//! are folded in when given. `--explain` on a failing gate runs the same
//! analysis inline. `train --flight-dump PATH` writes the always-on
//! flight recorder's ring to PATH at end of run (and on faults/watchdog
//! trips) for `doctor` to ingest.

use naspipe::baselines::SystemKind;
use naspipe::core::config::DiagnosticsOptions;
use naspipe::core::fault::FaultPlan;
use naspipe::core::pipeline::run_pipeline_telemetry;
use naspipe::core::replay_gate::loss_digest;
use naspipe::core::runtime::{run_threaded_diagnosed, DurableOptions, RecoveryOptions};
use naspipe::core::task::TaskKind;
use naspipe::core::train::{replay_training, search_best_subnet, TrainConfig};
use naspipe::core::transcript::{replay_transcript, Transcript};
use naspipe::obs::{
    http_get, parse_json, render_top, Journal, OpsServer, OpsState, RunMeta, SpanTracer,
    TelemetryHub, TelemetryOptions,
};
use naspipe::supernet::sampler::{ExplorationStrategy, UniformSampler};
use naspipe::supernet::space::{SearchSpace, SpaceId};
use std::collections::{BTreeMap, BTreeSet};
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;

/// Parsed `--key value` options and bare `--flag`s plus the subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Args {
    command: String,
    options: BTreeMap<String, String>,
    flags: BTreeSet<String>,
}

/// Every subcommand with its value-taking options and bare flags. The
/// parser validates against this table so a typo like `--thread 4` is an
/// error with a suggestion instead of a silent no-op.
const COMMANDS: &[(&str, &[&str], &[&str])] = &[
    ("spaces", &[], &[]),
    (
        "train",
        &[
            "space",
            "gpus",
            "subnets",
            "seed",
            "batch",
            "threads",
            "system",
            "transcript",
            "engine",
            "metrics-addr",
            "sample-interval-ms",
            "checkpoint-dir",
            "checkpoint-keep",
            "checkpoint-interval",
            "kill-at",
            "flight-dump",
            "journal",
        ],
        &["resume"],
    ),
    ("replay", &["space", "transcript", "seed", "threads"], &[]),
    ("top", &["addr", "interval-ms", "iterations"], &["once"]),
    (
        "search",
        &[
            "space",
            "gpus",
            "subnets",
            "seed",
            "rounds",
            "threads",
            "metrics-addr",
            "sample-interval-ms",
        ],
        &[],
    ),
    (
        "bench-check",
        &[
            "baseline",
            "threshold-pct",
            "e2e-threshold-pct",
            "gate",
            "subnets",
        ],
        &["explain"],
    ),
    (
        "replay-check",
        &["corpus", "mode", "case"],
        &["bless", "explain"],
    ),
    (
        "doctor",
        &[
            "base",
            "cand",
            "top",
            "base-bench",
            "cand-bench",
            "base-flight",
            "cand-flight",
            "journal",
            "threshold-pct",
        ],
        &["json"],
    ),
];

/// Edit distance for the did-you-mean suggestion on unknown options.
fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

fn suggest<'a>(unknown: &str, known: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    known
        .map(|k| (levenshtein(unknown, k), k))
        .filter(|&(d, _)| d <= 3)
        .min()
        .map(|(_, k)| k)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let command = argv.first().cloned().ok_or("missing subcommand")?;
    let (_, value_opts, flag_opts) = COMMANDS
        .iter()
        .find(|(name, _, _)| *name == command)
        .ok_or_else(|| {
            let hint = suggest(&command, COMMANDS.iter().map(|(n, _, _)| *n))
                .map(|s| format!(" (did you mean '{s}'?)"))
                .unwrap_or_default();
            format!("unknown subcommand '{command}'{hint}")
        })?;
    let mut options = BTreeMap::new();
    let mut flags = BTreeSet::new();
    let mut i = 1;
    while i < argv.len() {
        let key = argv[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got '{}'", argv[i]))?;
        if flag_opts.contains(&key) {
            flags.insert(key.to_string());
            i += 1;
            continue;
        }
        if !value_opts.contains(&key) {
            let hint = suggest(key, value_opts.iter().chain(flag_opts.iter()).copied())
                .map(|s| format!(" (did you mean --{s}?)"))
                .unwrap_or_default();
            return Err(format!("unknown option --{key} for '{command}'{hint}"));
        }
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        options.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(Args {
        command,
        options,
        flags,
    })
}

impl Args {
    fn space(&self) -> Result<SearchSpace, String> {
        let name = self.options.get("space").ok_or("--space is required")?;
        SpaceId::ALL
            .into_iter()
            .find(|id| id.to_string() == *name)
            .map(SearchSpace::from_id)
            .ok_or_else(|| format!("unknown space '{name}' (try `naspipe spaces`)"))
    }

    fn u64_opt(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants an integer")),
        }
    }

    fn system(&self) -> Result<SystemKind, String> {
        match self.options.get("system").map(String::as_str) {
            None | Some("naspipe") => Ok(SystemKind::NasPipe),
            Some("gpipe") => Ok(SystemKind::GPipe),
            Some("pipedream") => Ok(SystemKind::PipeDream),
            Some("vpipe") => Ok(SystemKind::VPipe),
            Some(other) => Err(format!(
                "unknown system '{other}' (naspipe|gpipe|pipedream|vpipe)"
            )),
        }
    }

    fn engine(&self) -> Result<Engine, String> {
        match self.options.get("engine").map(String::as_str) {
            None | Some("des") => Ok(Engine::Des),
            Some("threaded") => Ok(Engine::Threaded),
            Some(other) => Err(format!("unknown engine '{other}' (des|threaded)")),
        }
    }

    /// `--sample-interval-ms` as microseconds (0 = telemetry default).
    fn sample_interval_us(&self) -> Result<u64, String> {
        Ok(self.u64_opt("sample-interval-ms", 0)? * 1000)
    }

    /// `--kill-at STAGE:SUBNET`: abort the whole process when that stage
    /// starts that subnet's forward (crash-injection for durable-resume
    /// testing).
    fn kill_at(&self) -> Result<Option<(u32, u64)>, String> {
        let Some(v) = self.options.get("kill-at") else {
            return Ok(None);
        };
        let parsed = v
            .split_once(':')
            .and_then(|(s, y)| Some((s.parse::<u32>().ok()?, y.parse::<u64>().ok()?)));
        parsed
            .map(Some)
            .ok_or_else(|| format!("--kill-at wants STAGE:SUBNET, got '{v}'"))
    }

    /// Durable-checkpoint options when `--checkpoint-dir` is given.
    fn durable(&self) -> Result<Option<DurableOptions>, String> {
        let resume = self.flags.contains("resume");
        let Some(dir) = self.options.get("checkpoint-dir") else {
            if resume || self.options.contains_key("checkpoint-keep") {
                return Err("--resume/--checkpoint-keep need --checkpoint-dir".into());
            }
            return Ok(None);
        };
        Ok(Some(DurableOptions {
            dir: std::path::PathBuf::from(dir),
            keep: self.u64_opt("checkpoint-keep", 0)? as usize,
            resume,
        }))
    }

    /// When `--metrics-addr` and/or `--journal` is given: the live ops
    /// plane — a telemetry hub, the shared run state behind `/status` /
    /// `/readyz`, a mirrored (and optionally file-sinked) structured
    /// journal, and, with `--metrics-addr`, the bound multi-route HTTP
    /// server (port 0 resolves to an ephemeral port, printed once so it
    /// can be curled).
    fn ops_plane(&self, engine: &str, gpus: u32, seed: u64) -> Result<Option<OpsPlane>, String> {
        let addr = self.options.get("metrics-addr");
        let journal_path = self.options.get("journal");
        if addr.is_none() && journal_path.is_none() {
            return Ok(None);
        }
        let hub = Arc::new(TelemetryHub::new(gpus as usize, 0));
        let meta = RunMeta::new(engine, gpus).seed(seed);
        let mut journal = Journal::new(0).with_mirror();
        if let Some(path) = journal_path {
            journal = journal
                .with_sink(std::path::Path::new(path))
                .map_err(|e| format!("cannot write journal to {path}: {e}"))?;
        }
        let state = Arc::new(OpsState::new(meta, Arc::clone(&hub), Arc::new(journal)));
        let server = match addr {
            Some(addr) => Some(
                OpsServer::bind(addr, Arc::clone(&state))
                    .map_err(|e| format!("cannot serve ops plane on {addr}: {e}"))?,
            ),
            None => None,
        };
        // The progress line stays tied to live scraping: journal-only
        // runs keep their stderr exactly as before.
        let topts = TelemetryOptions::new(hub)
            .with_interval_us(self.sample_interval_us()?)
            .with_progress(addr.is_some());
        Ok(Some(OpsPlane {
            topts,
            state,
            server,
        }))
    }
}

/// Everything `--metrics-addr` / `--journal` stand up for one run. The
/// server (when bound) serves until this is dropped at end of run.
struct OpsPlane {
    topts: TelemetryOptions,
    state: Arc<OpsState>,
    server: Option<OpsServer>,
}

/// Which training engine `naspipe train` drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    /// Discrete-event simulation plus numeric replay (the default).
    Des,
    /// The supervised threaded runtime (real threads, one per stage).
    Threaded,
}

fn train_config(seed: u64, threads: usize) -> TrainConfig {
    TrainConfig {
        seed,
        residual_scale: 0.15,
        ..TrainConfig::default()
    }
    .with_threads(threads)
}

fn cmd_spaces() {
    println!("space    blocks  choices  dataset   supernet params");
    for id in SpaceId::ALL {
        let space = SearchSpace::from_id(id);
        let (blocks, choices) = id.shape();
        println!(
            "{:<8} {:<7} {:<8} {:<9} {:.1}B",
            id.to_string(),
            blocks,
            choices,
            id.dataset(),
            space.supernet_param_bytes() as f64 / 4e9,
        );
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let space = args.space()?;
    let gpus = args.u64_opt("gpus", 8)? as u32;
    let n = args.u64_opt("subnets", 64)?;
    let seed = args.u64_opt("seed", 0)?;
    let batch = args.u64_opt("batch", 0)? as u32;
    let threads = args.u64_opt("threads", 0)? as usize;
    let system = args.system()?;
    let engine = args.engine()?;

    let subnets = UniformSampler::new(&space, seed).take_subnets(n as usize);
    if engine == Engine::Threaded {
        if system != SystemKind::NasPipe {
            return Err("--engine threaded only trains the naspipe system (CSP)".into());
        }
        return train_threaded(args, &space, subnets, gpus, seed, threads);
    }
    if args.options.contains_key("checkpoint-dir")
        || args.options.contains_key("kill-at")
        || args.flags.contains("resume")
    {
        return Err("--checkpoint-dir/--resume/--kill-at need --engine threaded".into());
    }
    let mut cfg = system
        .config(gpus, n)
        .with_seed(seed)
        .with_compute_threads(threads)
        .with_sample_interval_us(args.sample_interval_us()?);
    cfg.batch = batch;
    cfg.diagnostics.flight_dump = args.options.get("flight-dump").cloned();
    let mut ops = args.ops_plane("des", gpus, seed)?;
    if let Some(o) = &ops {
        cfg.diagnostics.ops = Some(Arc::clone(&o.state));
    }
    let outcome = run_pipeline_telemetry(
        &space,
        &cfg,
        subnets,
        Box::new(SpanTracer::new()),
        ops.as_ref().map(|o| &o.topts),
    )
    .map_err(|e| e.to_string())?;
    let r = &outcome.report;
    println!(
        "{system} on {} x {gpus} GPUs: {} subnets, batch {}",
        args.options["space"], r.subnets_completed, r.batch
    );
    println!(
        "  throughput {:.0} samples/s ({:.0} subnets/h), bubble {:.2}, ALU {:.2}x",
        r.throughput_samples_per_sec(),
        r.subnets_per_hour(),
        r.bubble_ratio,
        r.total_alu,
    );
    if let Some(hit) = r.cache_hit_rate {
        println!(
            "  cache hit {:.1}%, CPU memory {:.1} GiB",
            hit * 100.0,
            r.cpu_mem_gib
        );
    }

    let trained = replay_training(&space, &outcome, &train_config(seed, cfg.compute_threads));
    println!(
        "  trained: converged loss {:.4}, parameter hash {:016x}",
        trained.converged_loss(),
        trained.final_hash,
    );

    if let Some(path) = args.options.get("transcript") {
        let t = Transcript::from_outcome(&outcome);
        let mut file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        t.write(&mut file).map_err(|e| e.to_string())?;
        println!("  transcript written to {path}");
    }
    if let Some(o) = ops.as_mut() {
        if let Some(s) = o.server.as_mut() {
            s.shutdown();
        }
    }
    Ok(())
}

/// `naspipe train --engine threaded`: real stage threads under the
/// supervisor, with live telemetry when `--metrics-addr` is given.
fn train_threaded(
    args: &Args,
    space: &SearchSpace,
    subnets: Vec<naspipe::supernet::subnet::Subnet>,
    gpus: u32,
    seed: u64,
    threads: usize,
) -> Result<(), String> {
    let n = subnets.len();
    let mut ops = args.ops_plane("threaded", gpus, seed)?;
    let durable = args.durable()?;
    // Durable persistence needs cuts to persist: default the interval on
    // when a checkpoint directory is given.
    let default_interval = if durable.is_some() { 8 } else { 0 };
    let mut opts = RecoveryOptions {
        checkpoint_interval: args.u64_opt("checkpoint-interval", default_interval)?,
        ..RecoveryOptions::default()
    };
    if durable.is_some() && opts.checkpoint_interval == 0 {
        return Err("--checkpoint-dir needs --checkpoint-interval > 0".into());
    }
    if let Some((stage, subnet)) = args.kill_at()? {
        opts.fault_plan = FaultPlan::new().kill_on(stage, subnet, TaskKind::Forward);
    }
    let diag = DiagnosticsOptions {
        flight_dump: args.options.get("flight-dump").cloned(),
        ops: ops.as_ref().map(|o| Arc::clone(&o.state)),
        ..DiagnosticsOptions::default()
    };
    let run = run_threaded_diagnosed(
        space,
        subnets,
        &train_config(seed, threads),
        gpus,
        0,
        &opts,
        ops.as_ref().map(|o| &o.topts),
        durable.as_ref(),
        &diag,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "threaded CSP on {} x {gpus} stages: {n} subnets trained",
        args.options["space"],
    );
    println!(
        "  converged loss {:.4}, parameter hash {:016x}",
        run.result.converged_loss(),
        run.result.final_hash,
    );
    println!(
        "  wall {:.2}s, {} restart(s), {} telemetry sample(s) kept",
        run.report.wall_us as f64 / 1e6,
        run.recovery.restarts,
        run.report.series.len(),
    );
    // Machine-readable line for the crash-recovery harness: two runs
    // trained the same iff these digests match bitwise.
    println!(
        "RESULT hash={:016x} loss_digest={:016x} losses={}",
        run.result.final_hash,
        loss_digest(&run.result.losses),
        run.result.losses.len(),
    );
    if let Some(o) = ops.as_mut() {
        if let Some(s) = o.server.as_mut() {
            s.shutdown();
        }
    }
    Ok(())
}

/// `naspipe bench-check`: re-measures the compute backend and fails on
/// throughput regressions beyond the threshold against the tracked
/// `BENCH_compute.json` baseline.
fn cmd_bench_check(args: &Args) -> Result<(), String> {
    use naspipe_bench::experiments::compute;

    let path = args
        .options
        .get("baseline")
        .cloned()
        .unwrap_or_else(|| "BENCH_compute.json".to_string());
    let threshold = args.u64_opt("threshold-pct", 15)? as f64 / 100.0;
    let e2e_threshold = args.u64_opt("e2e-threshold-pct", 35)? as f64 / 100.0;
    let gate = match args.options.get("gate").map(String::as_str) {
        None | Some("all") => "all",
        Some("kernels") => "kernels",
        Some(other) => return Err(format!("unknown gate '{other}' (kernels|all)")),
    };
    let subnets = args.u64_opt("subnets", 24)?;
    let baseline = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read baseline {path}: {e} (run `repro bench` with BENCH_COMPUTE_JSON={path} to record one)"))?;

    eprintln!(
        "measuring compute backend at pool sizes {:?} ({subnets} replay subnets)...",
        compute::DEFAULT_THREAD_COUNTS
    );
    let fresh = compute::run_matrix(subnets, compute::DEFAULT_THREAD_COUNTS);
    if !fresh.all_ok() {
        return Err(
            "compute verdicts failed: kernels not bitwise equal or outputs/hashes not \
             invariant across pool sizes"
                .into(),
        );
    }
    let check = compute::check_against(&baseline, &fresh, threshold, e2e_threshold)?;
    println!("regression check against {path}:");
    print!("{}", compute::render_check(&check));
    let passed = match gate {
        "kernels" => check.kernels_ok(),
        _ => check.ok(),
    };
    if passed {
        if !check.ok() {
            eprintln!(
                "note: {} end-to-end metric(s) regressed but --gate kernels only \
                 fails on kernel families",
                check.regressions().len()
            );
        }
        Ok(())
    } else {
        if args.flags.contains("explain") {
            let rows: Vec<naspipe::obs::BenchDelta> = check
                .rows
                .iter()
                .map(|r| naspipe::obs::BenchDelta {
                    metric: r.metric.clone(),
                    baseline: r.baseline,
                    fresh: r.fresh,
                })
                .collect();
            print!("{}", naspipe::obs::explain_bench_check(&rows, threshold));
        }
        Err(format!(
            "bench-check failed (gate {gate}): {} metric(s) regressed past the tolerance \
             band ({:.0}% kernels, {:.0}% end-to-end) against the baseline",
            check.regressions().len(),
            threshold * 100.0,
            e2e_threshold * 100.0
        ))
    }
}

/// `naspipe replay-check`: the golden-trace behavioral gate. Re-executes
/// every committed golden trace against the current scheduler; strict
/// mode fails on any divergence (the CI gate), lenient mode prints the
/// same report but always exits zero (audit). `--bless` regenerates the
/// corpus after an intentional schedule change.
fn cmd_replay_check(args: &Args) -> Result<(), String> {
    use naspipe::core::replay_gate::{self, GateMode};

    let corpus = args
        .options
        .get("corpus")
        .cloned()
        .unwrap_or_else(|| replay_gate::DEFAULT_CORPUS_DIR.to_string());
    let dir = std::path::Path::new(&corpus);
    let filter = args.options.get("case").map(String::as_str);

    if args.flags.contains("bless") {
        eprintln!("blessing golden traces under {corpus}...");
        let written = replay_gate::bless(dir, filter)?;
        for path in &written {
            println!("blessed {path}");
        }
        println!("replay-check: {} golden trace(s) recorded", written.len());
        return Ok(());
    }

    let mode = match args.options.get("mode").map(String::as_str) {
        None | Some("strict") => GateMode::Strict,
        Some("lenient") => GateMode::Lenient,
        Some(other) => return Err(format!("unknown mode '{other}' (strict|lenient)")),
    };
    eprintln!("replaying golden traces under {corpus}...");
    let report = replay_gate::run_gate(dir, filter)?;
    print!("{}", report.render_text());
    if report.ok() || mode == GateMode::Lenient {
        Ok(())
    } else {
        if args.flags.contains("explain") {
            print!("{}", naspipe::obs::explain_replay(&report.render_text()));
        }
        Err(format!(
            "replay-check failed: {} divergence(s) from the golden corpus \
             (run with --mode lenient to audit, or --bless after an intentional change)",
            report.divergences()
        ))
    }
}

/// `naspipe doctor`: offline regression diagnosis from two runs'
/// artifacts. The chrome traces are required (write them with
/// `REPRO_TRACE_JSON=1 repro trace` or any span-trace export); bench
/// and flight-recorder artifacts are folded into the report when given.
/// The command is read-only and always exits zero on a successful
/// diagnosis — the verdict is the output, not the exit code.
fn cmd_doctor(args: &Args) -> Result<(), String> {
    use naspipe::obs::{bench_deltas, diagnose, flight_kind_counts, parse_chrome};

    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let print_journal = |path: &str| -> Result<(), String> {
        let (rows, problems) = naspipe::obs::journal_summary(&read(path)?);
        println!("journal event mix ({path}):");
        for (kind, count) in rows {
            println!("  {kind:<24} {count}");
        }
        for p in &problems {
            println!("  schema problem: {p}");
        }
        if problems.is_empty() {
            println!("  journal schema: ok");
        }
        Ok(())
    };
    // Journal-only mode: summarize one run's structured event log
    // without a trace diagnosis.
    if !args.options.contains_key("base") && !args.options.contains_key("cand") {
        if let Some(path) = args.options.get("journal") {
            return print_journal(path);
        }
    }

    let base_path = args
        .options
        .get("base")
        .ok_or("--base is required (the baseline run's chrome trace JSON)")?;
    let cand_path = args
        .options
        .get("cand")
        .ok_or("--cand is required (the candidate run's chrome trace JSON)")?;
    let top = args.u64_opt("top", 5)? as usize;
    let threshold = args.u64_opt("threshold-pct", 15)? as f64 / 100.0;
    let (base, _) = parse_chrome(&read(base_path)?).map_err(|e| format!("{base_path}: {e}"))?;
    let (cand, _) = parse_chrome(&read(cand_path)?).map_err(|e| format!("{cand_path}: {e}"))?;
    let d = diagnose(&base, &cand, top);
    if args.flags.contains("json") {
        println!("{}", d.to_json());
        return Ok(());
    }
    print!("{}", d.render_text());
    if let (Some(bb), Some(cb)) = (
        args.options.get("base-bench"),
        args.options.get("cand-bench"),
    ) {
        let rows = bench_deltas(&read(bb)?, &read(cb)?);
        print!("{}", naspipe::obs::explain_bench_check(&rows, threshold));
    }
    for (label, key) in [("base", "base-flight"), ("cand", "cand-flight")] {
        if let Some(path) = args.options.get(key) {
            println!("flight event mix, {label} ({path}):");
            for (kind, count) in flight_kind_counts(&read(path)?) {
                println!("  {kind:<18} {count}");
            }
        }
    }
    if let Some(path) = args.options.get("journal") {
        print_journal(path)?;
    }
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let space = args.space()?;
    let seed = args.u64_opt("seed", 0)?;
    let threads = args.u64_opt("threads", 0)? as usize;
    let path = args
        .options
        .get("transcript")
        .ok_or("--transcript is required")?;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let t = Transcript::read(&mut BufReader::new(file)).map_err(|e| e.to_string())?;
    println!(
        "replaying {} tasks over {} subnets...",
        t.tasks.len(),
        t.subnets.len()
    );
    let result = replay_transcript(&space, &t, &train_config(seed, threads));
    println!(
        "converged loss {:.4}, parameter hash {:016x}",
        result.converged_loss(),
        result.final_hash,
    );
    println!("top-5 subnets by training loss:");
    for (step, loss) in result.quality_ranking().into_iter().take(5) {
        println!("  SN{step}: {loss:.4}");
    }
    Ok(())
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let space = args.space()?;
    let gpus = args.u64_opt("gpus", 8)? as u32;
    let n = args.u64_opt("subnets", 64)?;
    let seed = args.u64_opt("seed", 0)?;
    let rounds = args.u64_opt("rounds", 64)? as usize;
    let threads = args.u64_opt("threads", 0)? as usize;

    let subnets = UniformSampler::new(&space, seed).take_subnets(n as usize);
    let cfg = naspipe::core::config::PipelineConfig::naspipe(gpus, n)
        .with_seed(seed)
        .with_compute_threads(threads)
        .with_sample_interval_us(args.sample_interval_us()?);
    let mut cfg = cfg;
    let ops = args.ops_plane("des", gpus, seed)?;
    if let Some(o) = &ops {
        cfg.diagnostics.ops = Some(Arc::clone(&o.state));
    }
    let outcome = run_pipeline_telemetry(
        &space,
        &cfg,
        subnets,
        Box::new(SpanTracer::new()),
        ops.as_ref().map(|o| &o.topts),
    )
    .map_err(|e| e.to_string())?;
    let tc = train_config(seed, cfg.compute_threads);
    let trained = replay_training(&space, &outcome, &tc);
    let (loss, best) = search_best_subnet(&space, &trained.store, &tc, rounds);
    println!(
        "trained {n} subnets, searched {rounds} rounds: best {} with validation loss {loss:.4}",
        best.seq_id(),
    );
    let head: Vec<u32> = best.choices().iter().take(12).copied().collect();
    println!("winning choices (first 12 blocks): {head:?}");
    Ok(())
}

/// `naspipe top`: terminal live view of a run's ops plane. Scrapes
/// `/status` + `/metrics` every interval and renders per-stage
/// utilization / watermark / queue-depth lines, until the run reports
/// done/failed, the endpoint goes away, or the iteration budget is
/// spent. Read-only: it never influences the run it watches.
fn cmd_top(args: &Args) -> Result<(), String> {
    use std::io::IsTerminal;

    let addr = args
        .options
        .get("addr")
        .ok_or("--addr is required (HOST:PORT of a live run's ops plane)")?;
    let interval = std::time::Duration::from_millis(args.u64_opt("interval-ms", 1000)?.max(100));
    let iterations = args.u64_opt("iterations", 0)?;
    let once = args.flags.contains("once");
    // Only a real terminal gets the clear-screen dance; piped output is
    // plain appended frames (what the docs' transcript shows).
    let live = std::io::stdout().is_terminal();
    let mut scraped = 0u64;
    loop {
        let status = http_get(addr, "/status")
            .map_err(|e| format!("cannot scrape http://{addr}/status: {e}"))?;
        if status.status != 200 {
            return Err(format!(
                "http://{addr}/status answered {} (not an ops plane?)",
                status.status
            ));
        }
        let metrics = http_get(addr, "/metrics")
            .map_err(|e| format!("cannot scrape http://{addr}/metrics: {e}"))?;
        let doc = parse_json(&status.body).map_err(|e| format!("/status is not JSON: {e}"))?;
        let frame = render_top(&doc, &metrics.body)?;
        if live {
            // ANSI clear + home, so the view repaints in place.
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        scraped += 1;
        let phase = doc
            .get("phase")
            .and_then(|p| p.as_str())
            .unwrap_or("unknown")
            .to_string();
        if once || (iterations > 0 && scraped >= iterations) {
            return Ok(());
        }
        if phase == "done" || phase == "failed" {
            println!("run {phase}; exiting");
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn usage() -> &'static str {
    "usage: naspipe <spaces|train|replay|search|top|bench-check|replay-check|doctor> [--option value ..]\n\
     \n\
     naspipe spaces\n\
     naspipe train  --space NLP.c2 [--gpus 8] [--subnets 64] [--seed 0]\n\
     \x20              [--batch 0] [--system naspipe|gpipe|pipedream|vpipe]\n\
     \x20              [--threads 0] [--transcript FILE]\n\
     \x20              [--engine des|threaded] [--metrics-addr HOST:PORT]\n\
     \x20              [--journal PATH] [--sample-interval-ms 200]\n\
     \x20              [--checkpoint-dir DIR] [--checkpoint-keep 3]\n\
     \x20              [--checkpoint-interval 8] [--resume]\n\
     \x20              [--kill-at STAGE:SUBNET] [--flight-dump PATH]\n\
     naspipe replay --space NLP.c2 --transcript FILE [--seed 0] [--threads 0]\n\
     naspipe search --space CV.c2 [--gpus 8] [--subnets 64] [--rounds 64]\n\
     \x20              [--threads 0] [--metrics-addr HOST:PORT]\n\
     naspipe top    --addr HOST:PORT [--interval-ms 1000] [--iterations 0]\n\
     \x20              [--once]\n\
     naspipe bench-check [--baseline BENCH_compute.json] [--threshold-pct 15]\n\
     \x20              [--e2e-threshold-pct 35] [--gate kernels|all]\n\
     \x20              [--subnets 24] [--explain]\n\
     naspipe replay-check [--corpus traces/golden] [--mode strict|lenient]\n\
     \x20              [--case SUBSTR] [--bless] [--explain]\n\
     naspipe doctor --base TRACE.json --cand TRACE.json [--top 5]\n\
     \x20              [--base-bench A.json --cand-bench B.json]\n\
     \x20              [--base-flight A.flight.json] [--cand-flight B.flight.json]\n\
     \x20              [--journal PATH] [--threshold-pct 15] [--json]\n\
     \n\
     --threads sets the compute-pool worker count (0 = NASPIPE_THREADS\n\
     or the machine's parallelism); it never changes numeric results.\n\
     --checkpoint-dir (threaded engine) persists every completed CSP\n\
     watermark cut durably; --resume continues from the newest valid\n\
     snapshot there, bitwise-identical to an uninterrupted run.\n\
     --kill-at STAGE:SUBNET aborts the whole process at that forward\n\
     task (crash injection; recover with --resume).\n\
     --metrics-addr serves the live ops plane while the run is in\n\
     flight: GET /metrics (Prometheus 0.0.4 text), /healthz, /readyz,\n\
     /status (versioned JSON), /flight (on-demand flight dump), and\n\
     /events (chunked journal stream); port 0 picks an ephemeral port,\n\
     printed once on stderr.\n\
     --journal PATH tees the structured event journal (watchdog trips,\n\
     checkpoint cuts, recovery and durable notices) to a JSONL file;\n\
     it works with or without --metrics-addr.\n\
     top renders a live per-stage view (watermark, fwd/bwd, tasks/s,\n\
     queue, stall/bubble, cache) by scraping /status and /metrics of a\n\
     run started with --metrics-addr.\n\
     bench-check re-measures the compute backend at pool sizes {1,4,8}\n\
     and exits non-zero when fresh throughput falls outside the tolerance\n\
     band of the tracked BENCH_compute.json (schema 2) baseline:\n\
     --threshold-pct bounds the kernel GFLOP/s families, the wider\n\
     --e2e-threshold-pct bounds replay subnets/s and threaded makespan\n\
     (wall clock is noisy); --gate kernels fails only on kernel families.\n\
     replay-check re-executes the committed golden traces against the\n\
     current scheduler; --mode strict (default) fails on any divergence,\n\
     naming the first divergent task; --mode lenient prints the same\n\
     report but exits zero; --bless regenerates the corpus.\n\
     --flight-dump writes the always-on flight recorder's per-stage ring\n\
     to PATH at end of run and on faults/watchdog trips.\n\
     --explain appends an automated doctor analysis to a failing gate.\n\
     doctor diagnoses a regression between two runs offline: ranked\n\
     critical-path attribution deltas, straggler and exported-stall\n\
     rankings, and a kernel-vs-scheduling verdict from their trace\n\
     (and optionally bench / flight) artifacts."
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "spaces" => {
            cmd_spaces();
            Ok(())
        }
        "train" => cmd_train(&args),
        "replay" => cmd_replay(&args),
        "search" => cmd_search(&args),
        "top" => cmd_top(&args),
        "bench-check" => cmd_bench_check(&args),
        "replay-check" => cmd_replay_check(&args),
        "doctor" => cmd_doctor(&args),
        // parse_args already rejects unknown subcommands.
        other => Err(format!("unknown subcommand '{other}'\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse_args(&argv("train --space NLP.c2 --gpus 4")).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.options["space"], "NLP.c2");
        assert_eq!(a.u64_opt("gpus", 8).unwrap(), 4);
        assert_eq!(a.u64_opt("subnets", 64).unwrap(), 64);
    }

    #[test]
    fn rejects_malformed_options() {
        assert!(parse_args(&argv("train space NLP.c2")).is_err());
        assert!(parse_args(&argv("train --space")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn rejects_unknown_options_with_a_suggestion() {
        // `--thread` used to be silently ignored; now it must error and
        // point at the real spelling.
        let err = parse_args(&argv("train --space NLP.c2 --thread 4")).unwrap_err();
        assert!(err.contains("unknown option --thread for 'train'"), "{err}");
        assert!(err.contains("did you mean --threads?"), "{err}");
        // An option valid elsewhere is still unknown here.
        let err = parse_args(&argv("replay --space NLP.c2 --rounds 9")).unwrap_err();
        assert!(
            err.contains("unknown option --rounds for 'replay'"),
            "{err}"
        );
        // No close match: no misleading suggestion.
        let err = parse_args(&argv("train --space NLP.c2 --zzzzzzzzzz 1")).unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn rejects_unknown_subcommands_with_a_suggestion() {
        let err = parse_args(&argv("trian --space NLP.c2")).unwrap_err();
        assert!(err.contains("unknown subcommand 'trian'"), "{err}");
        assert!(err.contains("did you mean 'train'?"), "{err}");
    }

    #[test]
    fn parses_replay_check_flags() {
        let a = parse_args(&argv("replay-check --mode lenient --bless --case des")).unwrap();
        assert_eq!(a.command, "replay-check");
        assert_eq!(a.options["mode"], "lenient");
        assert_eq!(a.options["case"], "des");
        assert!(a.flags.contains("bless"));
        // --bless is a bare flag: the next token is not swallowed as a value.
        let a = parse_args(&argv("replay-check --bless --mode strict")).unwrap();
        assert!(a.flags.contains("bless"));
        assert_eq!(a.options["mode"], "strict");
    }

    #[test]
    fn parses_durable_checkpoint_options() {
        let a = parse_args(&argv(
            "train --space NLP.c2 --engine threaded --checkpoint-dir /tmp/ck \
             --checkpoint-keep 5 --checkpoint-interval 4 --resume --kill-at 1:13",
        ))
        .unwrap();
        let d = a.durable().unwrap().unwrap();
        assert_eq!(d.dir, std::path::PathBuf::from("/tmp/ck"));
        assert_eq!(d.keep, 5);
        assert!(d.resume);
        assert_eq!(a.kill_at().unwrap(), Some((1, 13)));

        // --resume without --checkpoint-dir is a usage error.
        let a = parse_args(&argv("train --space NLP.c2 --resume")).unwrap();
        assert!(a.durable().is_err());
        // Malformed --kill-at is rejected, not silently ignored.
        let a = parse_args(&argv("train --space NLP.c2 --kill-at 13")).unwrap();
        assert!(a.kill_at().is_err());
        let a = parse_args(&argv("train --space NLP.c2 --kill-at a:b")).unwrap();
        assert!(a.kill_at().is_err());
        // No durable options at all: None, no error.
        let a = parse_args(&argv("train --space NLP.c2")).unwrap();
        assert_eq!(a.durable().unwrap(), None);
    }

    #[test]
    fn parses_doctor_and_explain_options() {
        let a = parse_args(&argv(
            "doctor --base a.json --cand b.json --top 3 --base-flight a.flight.json --json",
        ))
        .unwrap();
        assert_eq!(a.command, "doctor");
        assert_eq!(a.options["base"], "a.json");
        assert_eq!(a.options["cand"], "b.json");
        assert_eq!(a.u64_opt("top", 5).unwrap(), 3);
        assert_eq!(a.options["base-flight"], "a.flight.json");
        assert!(a.flags.contains("json"));

        // --explain is a bare flag on both gates.
        let a = parse_args(&argv("bench-check --explain --threshold-pct 10")).unwrap();
        assert!(a.flags.contains("explain"));
        assert_eq!(a.options["threshold-pct"], "10");
        let a = parse_args(&argv("replay-check --explain --mode strict")).unwrap();
        assert!(a.flags.contains("explain"));

        // --flight-dump takes a path on train, for either engine.
        let a = parse_args(&argv("train --space NLP.c2 --flight-dump run.flight.json")).unwrap();
        assert_eq!(a.options["flight-dump"], "run.flight.json");

        // doctor rejects options it does not take.
        assert!(parse_args(&argv("doctor --base a.json --bless")).is_err());
    }

    #[test]
    fn parses_ops_plane_options() {
        // train takes --journal alongside --metrics-addr.
        let a = parse_args(&argv(
            "train --space NLP.c2 --metrics-addr 127.0.0.1:0 --journal run.jsonl",
        ))
        .unwrap();
        assert_eq!(a.options["metrics-addr"], "127.0.0.1:0");
        assert_eq!(a.options["journal"], "run.jsonl");

        // top: --addr with pacing options and the bare --once flag.
        let a = parse_args(&argv(
            "top --addr 127.0.0.1:9464 --interval-ms 250 --iterations 3 --once",
        ))
        .unwrap();
        assert_eq!(a.command, "top");
        assert_eq!(a.options["addr"], "127.0.0.1:9464");
        assert_eq!(a.u64_opt("interval-ms", 1000).unwrap(), 250);
        assert_eq!(a.u64_opt("iterations", 0).unwrap(), 3);
        assert!(a.flags.contains("once"));

        // top rejects train-only options; doctor takes --journal.
        assert!(parse_args(&argv("top --addr 127.0.0.1:1 --space NLP.c2")).is_err());
        let a = parse_args(&argv(
            "doctor --base a.json --cand b.json --journal j.jsonl",
        ))
        .unwrap();
        assert_eq!(a.options["journal"], "j.jsonl");
    }

    #[test]
    fn resolves_spaces_and_systems() {
        let a = parse_args(&argv("train --space CV.c3 --system vpipe")).unwrap();
        assert_eq!(a.space().unwrap().num_blocks(), 32);
        assert_eq!(a.system().unwrap(), SystemKind::VPipe);
        let bad = parse_args(&argv("train --space Nope")).unwrap();
        assert!(bad.space().is_err());
        let bad_sys = parse_args(&argv("train --space CV.c3 --system zz")).unwrap();
        assert!(bad_sys.system().is_err());
    }
}
