//! NASPipe — high-performance, reproducible pipeline-parallel supernet
//! training via Causal Synchronous Parallelism.
//!
//! This umbrella crate re-exports the reproduction's five component
//! crates:
//!
//! * [`supernet`] — search spaces, the candidate-layer cost catalog, and
//!   exploration strategies (SPOS uniform sampling, regularised
//!   evolution);
//! * [`tensor`] — the deterministic f32 training substrate;
//! * [`sim`] — the discrete-event multi-GPU simulator;
//! * [`core`] — the CSP scheduler, context predictor, context manager,
//!   pipeline engine, training replay, and threaded runtime;
//! * [`baselines`] — GPipe, PipeDream, VPipe, and Retiarii's wrapped data
//!   parallelism;
//! * [`obs`] — metrics, CSP invariant checking, causal span tracing,
//!   and live telemetry (snapshot hub + Prometheus text exposition).
//!
//! # Quickstart
//!
//! ```
//! use naspipe::core::config::PipelineConfig;
//! use naspipe::core::pipeline::run_pipeline;
//! use naspipe::supernet::space::SearchSpace;
//!
//! let space = SearchSpace::nlp_c3();
//! let outcome = run_pipeline(&space, &PipelineConfig::naspipe(4, 10))?;
//! assert_eq!(outcome.report.subnets_completed, 10);
//! # Ok::<(), naspipe::core::pipeline::PipelineError>(())
//! ```
//!
//! See `examples/` for full workflows and `crates/bench` for the harness
//! that regenerates every table and figure of the paper's evaluation.

pub use naspipe_baselines as baselines;
pub use naspipe_core as core;
pub use naspipe_obs as obs;
pub use naspipe_sim as sim;
pub use naspipe_supernet as supernet;
pub use naspipe_tensor as tensor;
